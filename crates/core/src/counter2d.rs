//! 2D-Counter — the window design applied to a shared counter (extension).
//!
//! The simplest instance of the paper's §5 generalization: a counter split
//! into `width` cache-padded sub-counters (disjoint access parallelism),
//! with the same `Global`/window mechanism bounding how far any
//! sub-counter may run ahead. Threads increment a window-valid sub-counter
//! and raise the window when none is valid, exactly like the stack's push
//! path; the aggregate value is the sum of the sub-counters.
//!
//! The window gives the counter its quality guarantee: at any quiescent
//! point, `max_i(sub_i) - min_i(sub_i) <= depth + shift`, so a scanning
//! read (which sums sub-counters one at a time) is at most
//! `(depth + shift) * (width - 1)` away from a linearized count plus the
//! increments concurrent with the scan. A `width = 1` counter is exact.
//!
//! Increments-only by design (like `fetch_add` statistics counters);
//! [`Counter2D::value`] never decreases between quiescent reads.

use core::fmt;
use core::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

use crate::params::Params;
use crate::rng::HopRng;

/// A relaxed, window-bounded sharded counter.
///
/// # Examples
///
/// ```
/// use stack2d::{Counter2D, Params};
///
/// let c = Counter2D::new(Params::new(4, 8, 4).unwrap());
/// let mut h = c.handle_seeded(1);
/// for _ in 0..1000 {
///     h.increment();
/// }
/// assert_eq!(c.value(), 1000);
/// ```
pub struct Counter2D {
    subs: Box<[CachePadded<AtomicUsize>]>,
    global: CachePadded<AtomicUsize>,
    params: Params,
}

impl Counter2D {
    /// Creates a counter with the given window parameters.
    pub fn new(params: Params) -> Self {
        Counter2D {
            subs: (0..params.width()).map(|_| CachePadded::new(AtomicUsize::new(0))).collect(),
            global: CachePadded::new(AtomicUsize::new(params.initial_global())),
            params,
        }
    }

    /// The window parameters.
    #[inline]
    pub fn params(&self) -> Params {
        self.params
    }

    /// Registers a per-thread handle.
    pub fn handle(&self) -> CounterHandle<'_> {
        let mut rng = HopRng::from_thread();
        let last = rng.bounded(self.subs.len());
        CounterHandle { counter: self, last, rng }
    }

    /// Registers a handle with a deterministic RNG seed.
    pub fn handle_seeded(&self, seed: u64) -> CounterHandle<'_> {
        let mut rng = HopRng::seeded(seed);
        let last = rng.bounded(self.subs.len());
        CounterHandle { counter: self, last, rng }
    }

    /// The aggregate count: the sum of all sub-counters.
    ///
    /// Exact when quiescent; under concurrency the scan may miss or
    /// double-count in-flight increments up to the window bound (see the
    /// module docs).
    pub fn value(&self) -> usize {
        self.subs.iter().map(|s| s.load(Ordering::Acquire)).sum()
    }

    /// Per-sub-counter values (the load profile).
    pub fn profile(&self) -> Vec<usize> {
        self.subs.iter().map(|s| s.load(Ordering::Acquire)).collect()
    }

    /// The quiescent spread bound: `max - min` over sub-counters never
    /// exceeds this after all increments complete.
    pub fn spread_bound(&self) -> usize {
        self.params.depth() + self.params.shift()
    }

    /// Convenience increment through an ephemeral handle.
    pub fn increment(&self) {
        self.handle().increment();
    }
}

impl fmt::Debug for Counter2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter2D")
            .field("params", &self.params)
            .field("value", &self.value())
            .finish()
    }
}

/// Per-thread handle to a [`Counter2D`].
pub struct CounterHandle<'c> {
    counter: &'c Counter2D,
    last: usize,
    rng: HopRng,
}

impl CounterHandle<'_> {
    /// Adds one to the counter on some window-valid sub-counter.
    pub fn increment(&mut self) {
        let c = self.counter;
        let width = c.subs.len();
        let shift = c.params.shift();
        let mut start = self.last;
        loop {
            let global = c.global.load(Ordering::SeqCst);
            let mut advanced = false;
            // One random hop then a covering sweep, as in the stack.
            for step in 0..=width {
                let i = if step == 0 { start } else { (start + step) % width };
                if c.global.load(Ordering::SeqCst) != global {
                    start = i;
                    advanced = true;
                    break;
                }
                let v = c.subs[i].load(Ordering::Acquire);
                if v < global {
                    // Claim one unit via CAS so the window check and the
                    // increment apply to the same observed value.
                    if c.subs[i]
                        .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.last = i;
                        return;
                    }
                    // Lost a race: random hop (contention avoidance).
                    start = self.rng.bounded(width);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // Every sub-counter is at the window's edge: raise it.
                let _ = c.global.compare_exchange(
                    global,
                    global + shift,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                start = self.last;
            }
        }
    }
}

impl fmt::Debug for CounterHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CounterHandle").field("last", &self.last).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn params(w: usize, d: usize, s: usize) -> Params {
        Params::new(w, d, s).unwrap()
    }

    #[test]
    fn starts_at_zero() {
        let c = Counter2D::new(params(4, 2, 1));
        assert_eq!(c.value(), 0);
        assert_eq!(c.profile(), vec![0; 4]);
    }

    #[test]
    fn counts_exactly_single_thread() {
        let c = Counter2D::new(params(4, 3, 2));
        let mut h = c.handle_seeded(7);
        for _ in 0..10_000 {
            h.increment();
        }
        assert_eq!(c.value(), 10_000);
    }

    #[test]
    fn width_one_is_an_exact_counter() {
        let c = Counter2D::new(params(1, 1, 1));
        for _ in 0..100 {
            c.increment();
        }
        assert_eq!(c.value(), 100);
        assert_eq!(c.profile(), vec![100]);
    }

    #[test]
    fn quiescent_spread_respects_window_bound() {
        let p = params(8, 4, 2);
        let c = Counter2D::new(p);
        let mut h = c.handle_seeded(3);
        for _ in 0..5_000 {
            h.increment();
        }
        let profile = c.profile();
        let spread = profile.iter().max().unwrap() - profile.iter().min().unwrap();
        assert!(
            spread <= c.spread_bound(),
            "spread {spread} exceeds bound {} ({profile:?})",
            c.spread_bound()
        );
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        const THREADS: usize = 4;
        const PER: usize = 25_000;
        let c = Arc::new(Counter2D::new(params(4, 4, 2)));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                let mut h = c.handle_seeded(t as u64 + 1);
                for _ in 0..PER {
                    h.increment();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.value(), THREADS * PER, "increments lost or duplicated");
        // Quiescent spread bound holds under concurrency too.
        let profile = c.profile();
        let spread = profile.iter().max().unwrap() - profile.iter().min().unwrap();
        assert!(spread <= c.spread_bound(), "{profile:?}");
    }

    #[test]
    fn debug_formats() {
        let c = Counter2D::new(params(2, 1, 1));
        assert!(format!("{c:?}").contains("Counter2D"));
        assert!(format!("{:?}", c.handle()).contains("CounterHandle"));
    }
}
