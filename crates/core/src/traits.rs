//! Common interface implemented by the 2D-Stack and every baseline.
//!
//! The workload runner, the quality oracle and the experiment harness are all
//! generic over [`ConcurrentStack`], so each figure of the paper runs the
//! exact same driver code against every algorithm — only the stack type
//! changes, as in the paper's evaluation.

/// A concurrent stack (possibly with relaxed pop semantics) that threads
/// access through per-thread handles.
///
/// Handles carry whatever thread-local state the algorithm needs: the
/// 2D-Stack's locality index and hop RNG, the elimination stack's collision
/// slot, `k-robin`'s round-robin cursor, and so on. Creating a handle is
/// cheap and should be done once per worker thread.
///
/// # Examples
///
/// ```
/// use stack2d::{ConcurrentStack, StackHandle, Params, Stack2D};
///
/// fn drain<S: ConcurrentStack<u32>>(stack: &S) -> usize {
///     let mut h = stack.handle();
///     let mut n = 0;
///     while h.pop().is_some() {
///         n += 1;
///     }
///     n
/// }
///
/// let s = Stack2D::new(Params::default());
/// s.push(1);
/// s.push(2);
/// assert_eq!(drain(&s), 2);
/// ```
pub trait ConcurrentStack<T: Send>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: StackHandle<T>
    where
        Self: 'a,
        T: 'a;

    /// Registers a handle for the calling thread.
    fn handle(&self) -> Self::Handle<'_>;

    /// Short algorithm name as used in the paper's legends
    /// (`"2D-stack"`, `"treiber"`, `"elimination"`, `"k-segment"`,
    /// `"random"`, `"random-c2"`, `"k-robin"`).
    fn name(&self) -> &'static str;

    /// The deterministic k-out-of-order bound, if the algorithm has one.
    ///
    /// `Some(0)` means strict stack semantics; `None` means the algorithm
    /// provides no deterministic bound (e.g. `random`).
    fn relaxation_bound(&self) -> Option<usize> {
        None
    }
}

/// Per-thread operations on a [`ConcurrentStack`].
pub trait StackHandle<T> {
    /// Pushes `value`.
    fn push(&mut self, value: T);

    /// Pops an item; `None` when the stack was observed empty.
    fn pop(&mut self) -> Option<T>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, Stack2D};

    // Compile-time checks that the trait is usable generically with scoped
    // threads, which is how the workload runner consumes it.
    fn parallel_sum<S: ConcurrentStack<u64>>(stack: &S, threads: usize, per: usize) -> u64 {
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..threads {
                joins.push(scope.spawn(move || {
                    let mut h = stack.handle();
                    for i in 0..per {
                        h.push((t * per + i) as u64);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        let mut h = stack.handle();
        let mut sum = 0;
        while let Some(v) = h.pop() {
            sum += v;
        }
        sum
    }

    #[test]
    fn generic_driver_works_over_the_trait() {
        let stack = Stack2D::new(Params::new(4, 2, 1).unwrap());
        let n = 4 * 500u64;
        let expect = n * (n - 1) / 2;
        assert_eq!(parallel_sum(&stack, 4, 500), expect);
    }

    #[test]
    fn default_relaxation_bound_is_none() {
        struct Dummy;
        struct DummyHandle;
        impl StackHandle<u8> for DummyHandle {
            fn push(&mut self, _: u8) {}
            fn pop(&mut self) -> Option<u8> {
                None
            }
        }
        impl ConcurrentStack<u8> for Dummy {
            type Handle<'a> = DummyHandle;
            fn handle(&self) -> DummyHandle {
                DummyHandle
            }
            fn name(&self) -> &'static str {
                "dummy"
            }
        }
        assert_eq!(Dummy.relaxation_bound(), None);
    }
}
