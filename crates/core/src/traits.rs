//! Common interfaces: the stack contract shared with every baseline, and
//! the elastic contract shared by every windowed structure.
//!
//! The workload runner, the quality oracle and the experiment harness are all
//! generic over [`ConcurrentStack`], so each figure of the paper runs the
//! exact same driver code against every algorithm — only the stack type
//! changes, as in the paper's evaluation. [`ElasticTarget`] plays the same
//! role for the elastic runtime: the `stack2d-adaptive` controllers and
//! drivers are generic over it, so one AIMD policy retunes the stack, the
//! queue and the counter alike.

use crate::metrics::MetricsSnapshot;
use crate::params::Params;
use crate::window::{RetuneError, WindowInfo};

/// A concurrent stack (possibly with relaxed pop semantics) that threads
/// access through per-thread handles.
///
/// Handles carry whatever thread-local state the algorithm needs: the
/// 2D-Stack's locality index and hop RNG, the elimination stack's collision
/// slot, `k-robin`'s round-robin cursor, and so on. Creating a handle is
/// cheap and should be done once per worker thread.
///
/// # Examples
///
/// ```
/// use stack2d::{ConcurrentStack, StackHandle, Params, Stack2D};
///
/// fn drain<S: ConcurrentStack<u32>>(stack: &S) -> usize {
///     let mut h = stack.handle();
///     let mut n = 0;
///     while h.pop().is_some() {
///         n += 1;
///     }
///     n
/// }
///
/// let s = Stack2D::new(Params::default());
/// s.push(1);
/// s.push(2);
/// assert_eq!(drain(&s), 2);
/// ```
pub trait ConcurrentStack<T: Send>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: StackHandle<T>
    where
        Self: 'a,
        T: 'a;

    /// Registers a handle for the calling thread.
    fn handle(&self) -> Self::Handle<'_>;

    /// Short algorithm name as used in the paper's legends
    /// (`"2D-stack"`, `"treiber"`, `"elimination"`, `"k-segment"`,
    /// `"random"`, `"random-c2"`, `"k-robin"`).
    fn name(&self) -> &'static str;

    /// The deterministic k-out-of-order bound, if the algorithm has one.
    ///
    /// `Some(0)` means strict stack semantics; `None` means the algorithm
    /// provides no deterministic bound (e.g. `random`).
    fn relaxation_bound(&self) -> Option<usize> {
        None
    }
}

/// Per-thread operations on a [`ConcurrentStack`].
pub trait StackHandle<T> {
    /// Pushes `value`.
    fn push(&mut self, value: T);

    /// Pops an item; `None` when the stack was observed empty.
    fn pop(&mut self) -> Option<T>;
}

/// A structure whose 2D window can be retuned online — what a feedback
/// controller (the `stack2d-adaptive` crate) drives.
///
/// Implemented by all three windowed structures:
/// [`Stack2D`](crate::Stack2D), [`Queue2D`](crate::Queue2D) (whose put
/// *and* get windows are retuned together; the reported window is the
/// get window, the one that governs dequeue quality) and
/// [`Counter2D`](crate::Counter2D). The contract mirrors what PR 2's
/// elastic runtime used directly on `Stack2D`: a metrics delta to derive
/// the window-pressure signal from, a live window snapshot, a hard width
/// ceiling, and the retune / shrink-commit entry points.
///
/// # Examples
///
/// ```
/// use stack2d::{Counter2D, ElasticTarget, Params, Queue2D, Stack2D};
///
/// fn widen<E: ElasticTarget>(target: &E) -> stack2d::WindowInfo {
///     let w = target.window();
///     let p = Params::new(target.capacity(), w.depth(), w.shift()).unwrap();
///     target.retune(p).unwrap()
/// }
///
/// let stack: Stack2D<u8> = Stack2D::elastic(Params::new(1, 1, 1).unwrap(), 4);
/// let queue: Queue2D<u8> = Queue2D::elastic(Params::new(1, 1, 1).unwrap(), 4);
/// let counter = Counter2D::elastic(Params::new(1, 1, 1).unwrap(), 4);
/// assert_eq!(widen(&stack).width(), 4);
/// assert_eq!(widen(&queue).width(), 4);
/// assert_eq!(widen(&counter).width(), 4);
/// ```
pub trait ElasticTarget: Send + Sync {
    /// A consistent snapshot of the live window (for the queue: the get
    /// window, which governs dequeue quality).
    fn window(&self) -> WindowInfo;

    /// Number of sub-structures allocated at construction — the hard
    /// ceiling for retuned widths.
    fn capacity(&self) -> usize;

    /// A snapshot of the operation counters; controllers diff successive
    /// snapshots to derive per-interval pressure.
    fn metrics(&self) -> MetricsSnapshot;

    /// Installs new window parameters (non-blocking for concurrent
    /// operations), returning the snapshot that took effect.
    ///
    /// # Errors
    ///
    /// [`RetuneError::ExceedsCapacity`] if `params.width()` exceeds
    /// [`ElasticTarget::capacity`].
    fn retune(&self, params: Params) -> Result<WindowInfo, RetuneError>;

    /// Attempts to commit a pending width shrink; `None` when there is
    /// nothing to commit or its preconditions do not hold yet.
    fn try_commit_shrink(&self) -> Option<WindowInfo>;

    /// Short structure name for logs and experiment CSVs.
    fn target_name(&self) -> &'static str {
        "elastic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, Stack2D};

    // Compile-time checks that the trait is usable generically with scoped
    // threads, which is how the workload runner consumes it.
    fn parallel_sum<S: ConcurrentStack<u64>>(stack: &S, threads: usize, per: usize) -> u64 {
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..threads {
                joins.push(scope.spawn(move || {
                    let mut h = stack.handle();
                    for i in 0..per {
                        h.push((t * per + i) as u64);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        let mut h = stack.handle();
        let mut sum = 0;
        while let Some(v) = h.pop() {
            sum += v;
        }
        sum
    }

    #[test]
    fn generic_driver_works_over_the_trait() {
        let stack = Stack2D::new(Params::new(4, 2, 1).unwrap());
        let n = 4 * 500u64;
        let expect = n * (n - 1) / 2;
        assert_eq!(parallel_sum(&stack, 4, 500), expect);
    }

    #[test]
    fn default_relaxation_bound_is_none() {
        struct Dummy;
        struct DummyHandle;
        impl StackHandle<u8> for DummyHandle {
            fn push(&mut self, _: u8) {}
            fn pop(&mut self) -> Option<u8> {
                None
            }
        }
        impl ConcurrentStack<u8> for Dummy {
            type Handle<'a> = DummyHandle;
            fn handle(&self) -> DummyHandle {
                DummyHandle
            }
            fn name(&self) -> &'static str {
                "dummy"
            }
        }
        assert_eq!(Dummy.relaxation_bound(), None);
    }
}
