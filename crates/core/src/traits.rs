//! Common interfaces: the structure-generic produce/consume contract
//! ([`RelaxedOps`]), the stack contract shared with every baseline
//! ([`ConcurrentStack`]), and the elastic contract shared by every
//! windowed structure ([`ElasticTarget`]).
//!
//! The workload runner and the experiment harness are generic over
//! [`RelaxedOps`], so the exact same driver code runs the 2D-Stack, the
//! 2D-Queue, the 2D-Counter and every baseline — only the structure type
//! changes, as in the paper's evaluation. [`ConcurrentStack`] is the
//! LIFO-specific refinement the stack baselines and the quality oracle
//! speak (every `ConcurrentStack` is adapted into a `RelaxedOps` by
//! [`impl_relaxed_ops_for_stack!`](crate::impl_relaxed_ops_for_stack)).
//! [`ElasticTarget`] plays the same role for the elastic runtime: the
//! `stack2d-adaptive` controllers and drivers are generic over it, so one
//! AIMD policy retunes the stack, the queue and the counter alike.

use crate::metrics::MetricsSnapshot;
use crate::params::Params;
use crate::telemetry::Recorder;
use crate::window::{RetuneError, WindowInfo};

/// Per-thread produce/consume operations on a [`RelaxedOps`] structure.
///
/// The names are deliberately structure-neutral: `produce` is a stack push,
/// a queue enqueue or a counter increment; `consume` is a pop, a dequeue —
/// or, for a structure with nothing to consume (the counter), always
/// `None`.
pub trait OpsHandle<T> {
    /// Inserts `value` (push / enqueue / increment).
    fn produce(&mut self, value: T);

    /// Removes an item; `None` when the structure was observed empty (or
    /// does not support consumption).
    fn consume(&mut self) -> Option<T>;

    /// Inserts every value in `values`. The default loops over
    /// [`produce`](OpsHandle::produce); the 2D structures override it with
    /// a batched path that amortizes the window search across the batch
    /// (one search round per won sub-structure instead of one per item).
    /// Object-safe, so `dyn OpsHandle` callers (the server's connection
    /// executor) reach the fast path.
    fn produce_n(&mut self, values: Vec<T>) {
        for v in values {
            self.produce(v);
        }
    }

    /// Removes up to `max` items, stopping early when the structure is
    /// observed empty. The default loops over
    /// [`consume`](OpsHandle::consume); the 2D structures override it with
    /// a batched path.
    fn consume_n(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max);
        for _ in 0..max {
            match self.consume() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}

/// Adapts any [`StackHandle`] into an [`OpsHandle`] (produce = push,
/// consume = pop). This wrapper — rather than a blanket impl — keeps
/// coherence open for non-stack handles like the queue's.
#[derive(Debug)]
pub struct StackOps<H>(pub H);

impl<T, H: StackHandle<T>> OpsHandle<T> for StackOps<H> {
    fn produce(&mut self, value: T) {
        self.0.push(value);
    }

    fn consume(&mut self) -> Option<T> {
        self.0.pop()
    }

    fn produce_n(&mut self, values: Vec<T>) {
        self.0.push_n(values);
    }

    fn consume_n(&mut self, max: usize) -> Vec<T> {
        self.0.pop_n(max)
    }
}

/// A concurrent structure with (possibly relaxed) produce/consume
/// semantics, accessed through per-thread handles — the contract the
/// generic workload runner and the harness registry drive.
///
/// Implemented by all three 2D structures ([`Stack2D`](crate::Stack2D),
/// [`Queue2D`](crate::Queue2D), [`Counter2D`](crate::Counter2D)) and by
/// every baseline (stacks via
/// [`impl_relaxed_ops_for_stack!`](crate::impl_relaxed_ops_for_stack), the
/// locked queue directly), so one driver measures the whole family.
///
/// # Examples
///
/// ```
/// use stack2d::{OpsHandle, Queue2D, RelaxedOps, Stack2D};
///
/// fn churn<S: RelaxedOps<u32>>(s: &S) -> usize {
///     let mut h = s.ops_handle_seeded(7);
///     for i in 0..100 {
///         h.produce(i);
///     }
///     let mut n = 0;
///     while h.consume().is_some() {
///         n += 1;
///     }
///     n
/// }
///
/// let stack: Stack2D<u32> = Stack2D::builder().width(4).build().unwrap();
/// let queue: Queue2D<u32> = Queue2D::builder().width(4).build().unwrap();
/// assert_eq!(churn(&stack), 100);
/// assert_eq!(churn(&queue), 100);
/// ```
pub trait RelaxedOps<T: Send>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: OpsHandle<T>
    where
        Self: 'a,
        T: 'a;

    /// Registers a handle for the calling thread.
    fn ops_handle(&self) -> Self::Handle<'_>;

    /// Registers a handle with a deterministic RNG seed where the
    /// structure supports it; the default ignores the seed and returns
    /// [`ops_handle`](RelaxedOps::ops_handle).
    fn ops_handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        let _ = seed;
        self.ops_handle()
    }

    /// Short structure name for legends, logs and experiment CSVs.
    fn name(&self) -> &'static str;

    /// The deterministic out-of-order bound, if the structure has one.
    ///
    /// `Some(0)` means strict semantics; `None` means no deterministic
    /// bound exists (e.g. the `random` baseline). Elastic structures
    /// report their residency-aware instantaneous bound, which stays
    /// sound through retune transients.
    fn relaxation_bound(&self) -> Option<usize> {
        None
    }
}

/// Implements [`RelaxedOps`] for a [`ConcurrentStack`] type by delegation
/// (produce = push, consume = pop, same name/bound/seeding), wrapping the
/// stack handle in [`StackOps`].
///
/// Two forms: `impl_relaxed_ops_for_stack!(MyStack)` for a type generic
/// over its item (`MyStack<T>`), and
/// `impl_relaxed_ops_for_stack!(MyStack => u64)` for a concrete type
/// serving one item type.
#[macro_export]
macro_rules! impl_relaxed_ops_for_stack {
    ($stack:ident) => {
        impl<T: Send> $crate::RelaxedOps<T> for $stack<T> {
            type Handle<'a>
                = $crate::StackOps<<$stack<T> as $crate::ConcurrentStack<T>>::Handle<'a>>
            where
                T: 'a;

            fn ops_handle(&self) -> Self::Handle<'_> {
                $crate::StackOps($crate::ConcurrentStack::handle(self))
            }

            fn ops_handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
                $crate::StackOps($crate::ConcurrentStack::handle_seeded(self, seed))
            }

            fn name(&self) -> &'static str {
                $crate::ConcurrentStack::<T>::name(self)
            }

            fn relaxation_bound(&self) -> Option<usize> {
                $crate::ConcurrentStack::<T>::relaxation_bound(self)
            }
        }
    };
    ($stack:ty => $item:ty) => {
        impl $crate::RelaxedOps<$item> for $stack {
            type Handle<'a> =
                $crate::StackOps<<$stack as $crate::ConcurrentStack<$item>>::Handle<'a>>;

            fn ops_handle(&self) -> Self::Handle<'_> {
                $crate::StackOps($crate::ConcurrentStack::handle(self))
            }

            fn ops_handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
                $crate::StackOps($crate::ConcurrentStack::handle_seeded(self, seed))
            }

            fn name(&self) -> &'static str {
                $crate::ConcurrentStack::<$item>::name(self)
            }

            fn relaxation_bound(&self) -> Option<usize> {
                $crate::ConcurrentStack::<$item>::relaxation_bound(self)
            }
        }
    };
}

/// A concurrent stack (possibly with relaxed pop semantics) that threads
/// access through per-thread handles.
///
/// Handles carry whatever thread-local state the algorithm needs: the
/// 2D-Stack's locality index and hop RNG, the elimination stack's collision
/// slot, `k-robin`'s round-robin cursor, and so on. Creating a handle is
/// cheap and should be done once per worker thread.
///
/// # Examples
///
/// ```
/// use stack2d::{ConcurrentStack, StackHandle, Params, Stack2D};
///
/// fn drain<S: ConcurrentStack<u32>>(stack: &S) -> usize {
///     let mut h = stack.handle();
///     let mut n = 0;
///     while h.pop().is_some() {
///         n += 1;
///     }
///     n
/// }
///
/// let s = Stack2D::new(Params::default());
/// s.push(1);
/// s.push(2);
/// assert_eq!(drain(&s), 2);
/// ```
pub trait ConcurrentStack<T: Send>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: StackHandle<T>
    where
        Self: 'a,
        T: 'a;

    /// Registers a handle for the calling thread.
    fn handle(&self) -> Self::Handle<'_>;

    /// Registers a handle with a deterministic RNG seed where the
    /// algorithm supports it; the default ignores the seed and returns
    /// [`handle`](ConcurrentStack::handle). Deterministic tests and the
    /// quality pipeline use this instead of special-casing concrete
    /// types.
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::{ConcurrentStack, Params, Stack2D, StackHandle};
    ///
    /// fn deterministic_drain<S: ConcurrentStack<u32>>(s: &S) -> usize {
    ///     let mut h = s.handle_seeded(42);
    ///     let mut n = 0;
    ///     while h.pop().is_some() {
    ///         n += 1;
    ///     }
    ///     n
    /// }
    ///
    /// let s = Stack2D::new(Params::default());
    /// s.push(7);
    /// assert_eq!(deterministic_drain(&s), 1);
    /// ```
    fn handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        let _ = seed;
        self.handle()
    }

    /// Short algorithm name as used in the paper's legends
    /// (`"2D-stack"`, `"treiber"`, `"elimination"`, `"k-segment"`,
    /// `"random"`, `"random-c2"`, `"k-robin"`).
    fn name(&self) -> &'static str;

    /// The deterministic k-out-of-order bound, if the algorithm has one.
    ///
    /// `Some(0)` means strict stack semantics; `None` means the algorithm
    /// provides no deterministic bound (e.g. `random`).
    fn relaxation_bound(&self) -> Option<usize> {
        None
    }
}

/// Per-thread operations on a [`ConcurrentStack`].
pub trait StackHandle<T> {
    /// Pushes `value`.
    fn push(&mut self, value: T);

    /// Pops an item; `None` when the stack was observed empty.
    fn pop(&mut self) -> Option<T>;

    /// Pushes every value in `values`. The default loops over
    /// [`push`](StackHandle::push); [`Handle2D`](crate::Handle2D)
    /// overrides it with the search-amortizing batched path.
    fn push_n(&mut self, values: Vec<T>) {
        for v in values {
            self.push(v);
        }
    }

    /// Pops up to `max` items, stopping early on empty. The default loops
    /// over [`pop`](StackHandle::pop).
    fn pop_n(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(max);
        for _ in 0..max {
            match self.pop() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}

/// A structure whose 2D window can be retuned online — what a feedback
/// controller (the `stack2d-adaptive` crate) drives.
///
/// Implemented by all three windowed structures:
/// [`Stack2D`](crate::Stack2D), [`Queue2D`](crate::Queue2D) (whose put
/// *and* get windows are retuned together; the reported window is the
/// get window, the one that governs dequeue quality) and
/// [`Counter2D`](crate::Counter2D). The contract mirrors what PR 2's
/// elastic runtime used directly on `Stack2D`: a metrics delta to derive
/// the window-pressure signal from, a live window snapshot, a hard width
/// ceiling, and the retune / shrink-commit entry points.
///
/// # Examples
///
/// ```
/// use stack2d::{Counter2D, ElasticTarget, Params, Queue2D, Stack2D};
///
/// fn widen<E: ElasticTarget>(target: &E) -> stack2d::WindowInfo {
///     let w = target.window();
///     let p = Params::new(target.capacity(), w.depth(), w.shift()).unwrap();
///     target.retune(p).unwrap()
/// }
///
/// let stack: Stack2D<u8> = Stack2D::builder().width(1).elastic_capacity(4).build().unwrap();
/// let queue: Queue2D<u8> = Queue2D::builder().width(1).elastic_capacity(4).build().unwrap();
/// let counter = Counter2D::builder().width(1).elastic_capacity(4).build().unwrap();
/// assert_eq!(widen(&stack).width(), 4);
/// assert_eq!(widen(&queue).width(), 4);
/// assert_eq!(widen(&counter).width(), 4);
/// ```
pub trait ElasticTarget: Send + Sync {
    /// A consistent snapshot of the live window (for the queue: the get
    /// window, which governs dequeue quality).
    fn window(&self) -> WindowInfo;

    /// Number of sub-structures allocated at construction — the hard
    /// ceiling for retuned widths.
    fn capacity(&self) -> usize;

    /// A snapshot of the operation counters; controllers diff successive
    /// snapshots to derive per-interval pressure.
    fn metrics(&self) -> MetricsSnapshot;

    /// Installs new window parameters (non-blocking for concurrent
    /// operations), returning the snapshot that took effect.
    ///
    /// # Errors
    ///
    /// [`RetuneError::ExceedsCapacity`] if `params.width()` exceeds
    /// [`ElasticTarget::capacity`].
    fn retune(&self, params: Params) -> Result<WindowInfo, RetuneError>;

    /// Attempts to commit a pending width shrink; `None` when there is
    /// nothing to commit or its preconditions do not hold yet.
    fn try_commit_shrink(&self) -> Option<WindowInfo>;

    /// Whether the structure was built with elastic headroom (capacity
    /// beyond its initial width), i.e. is meant to be retuned online.
    fn is_elastic(&self) -> bool;

    /// The *configured* relaxation bound of the live window. The default
    /// reads [`WindowInfo::k_bound`]; the counter overrides it with its
    /// own spread-based formula.
    fn k_bound(&self) -> usize {
        self.window().k_bound()
    }

    /// The residency-derived *live* relaxation bound, sound at every
    /// instant including retune transients (see
    /// [`Stack2D::k_bound_instantaneous`](crate::Stack2D::k_bound_instantaneous)
    /// and its queue/counter analogues). Advisory under unquiesced
    /// concurrency.
    fn k_bound_instantaneous(&self) -> usize;

    /// The bound the ops trait family reports for this structure: the
    /// configured bound on the fixed path, widened by the live residency
    /// bound on the elastic path (where a width-grow transient can
    /// legitimately exceed the static formula until resident items
    /// drain). One rule for all three structures, by construction.
    fn reported_bound(&self) -> usize {
        if self.is_elastic() {
            self.k_bound().max(self.k_bound_instantaneous())
        } else {
            self.k_bound()
        }
    }

    /// Short structure name for logs and experiment CSVs.
    fn target_name(&self) -> &'static str {
        "elastic"
    }

    /// The telemetry sink attached to the structure at build time
    /// ([`Builder::recorder`](crate::Builder::recorder)), if any. Elastic
    /// drivers emit their observation→decision→outcome spans through it so
    /// controller activity lands in the same event stream as the
    /// structure's own shifts and retunes. Defaults to `None`.
    fn recorder(&self) -> Option<&dyn Recorder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Params, Stack2D};

    // Compile-time checks that the trait is usable generically with scoped
    // threads, which is how the workload runner consumes it.
    fn parallel_sum<S: ConcurrentStack<u64>>(stack: &S, threads: usize, per: usize) -> u64 {
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..threads {
                joins.push(scope.spawn(move || {
                    let mut h = stack.handle();
                    for i in 0..per {
                        h.push((t * per + i) as u64);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        let mut h = stack.handle();
        let mut sum = 0;
        while let Some(v) = h.pop() {
            sum += v;
        }
        sum
    }

    #[test]
    fn generic_driver_works_over_the_trait() {
        let stack = Stack2D::new(Params::new(4, 2, 1).unwrap());
        let n = 4 * 500u64;
        let expect = n * (n - 1) / 2;
        assert_eq!(parallel_sum(&stack, 4, 500), expect);
    }

    #[test]
    fn default_relaxation_bound_is_none() {
        struct Dummy;
        struct DummyHandle;
        impl StackHandle<u8> for DummyHandle {
            fn push(&mut self, _: u8) {}
            fn pop(&mut self) -> Option<u8> {
                None
            }
        }
        impl ConcurrentStack<u8> for Dummy {
            type Handle<'a> = DummyHandle;
            fn handle(&self) -> DummyHandle {
                DummyHandle
            }
            fn name(&self) -> &'static str {
                "dummy"
            }
        }
        assert_eq!(Dummy.relaxation_bound(), None);
    }
}
