//! # stack2d — the 2D-Stack
//!
//! A reproduction of **"Brief Announcement: 2D-Stack — A Scalable Lock-Free
//! Stack Design that Continuously Relaxes Semantics for Better Performance"**
//! (Rukundo, Atalar, Tsigas — PODC 2018).
//!
//! Concurrent stacks bottleneck on their single access point. The 2D-Stack
//! relaxes LIFO semantics in a *controlled* way to remove that bottleneck:
//! items live in `width` lock-free sub-stacks (disjoint access parallelism —
//! the **horizontal** dimension), and a shared window of `depth` items per
//! sub-stack (the **vertical** dimension, exploited for locality) keeps the
//! sub-stacks so close in length that a pop can only ever be `k` positions
//! out of order, with the deterministic bound of the paper's Theorem 1:
//!
//! ```text
//! k = (2 * shift + depth) * (width - 1)
//! ```
//!
//! *(Reproduction finding: for `shift < (depth-1)/2` the stated formula is
//! exceedable and the implementation guarantees
//! `(2*depth - 1)*(width - 1)` instead — see [`Params::k_bound`]; every
//! preset configuration is unaffected.)*
//!
//! ## Quick start
//!
//! ```
//! use stack2d::Stack2D;
//!
//! # fn main() -> Result<(), stack2d::ParamsError> {
//! // A stack tuned for 4 worker threads (width = 4P, paper §4), through
//! // the validated builder — the unified construction surface shared by
//! // Stack2D, Queue2D and Counter2D.
//! let stack = Stack2D::builder().for_threads(4).build()?;
//!
//! std::thread::scope(|s| {
//!     for t in 0..4 {
//!         let stack = &stack;
//!         s.spawn(move || {
//!             let mut h = stack.handle(); // per-thread handle: locality + hop RNG
//!             for i in 0..1_000 {
//!                 h.push(t * 1_000 + i);
//!             }
//!             for _ in 0..1_000 {
//!                 h.pop();
//!             }
//!         });
//!     }
//! });
//! assert!(stack.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! ## Choosing parameters
//!
//! * [`Builder::for_threads`] — the paper's high-throughput preset
//!   (`width = 4P`, tightest window).
//! * [`Builder::for_bound`] — invert a relaxation budget `k` into the
//!   maximal-width window staying within it; [`Params::for_k`] is the
//!   thread-capped variant behind `AnyStack`'s Figure 1 configurations.
//! * [`Builder::width`] / [`Builder::depth`] / [`Builder::shift`] — full
//!   manual control, validated once at [`Builder::build`].
//!
//! ## Crate layout
//!
//! * [`builder`] / [`Builder`] — the typed, validated construction surface
//!   shared by all three windowed structures (with [`Builder::seed`] for
//!   deterministic handle sequences and [`Builder::elastic_capacity`] for
//!   retunable headroom);
//! * [`traits`] — [`RelaxedOps`]/[`OpsHandle`], the structure-generic
//!   produce/consume contract the workload runner drives, plus the
//!   LIFO-specific [`ConcurrentStack`] refinement shared with every
//!   baseline;
//! * [`stack`] / [`Stack2D`] — the 2D window algorithm;
//! * [`substack`] — the descriptor-based lock-free sub-stack (public because
//!   the paper's `random` / `random-c2` / `k-robin` baselines in
//!   `stack2d-baselines` are built from the same block);
//! * [`search`] — the two-phase search policy, its ablation variants and
//!   the structure-shared [`SearchConfig`]; the policies execute in one
//!   crate-internal window-search *engine* (`engine.rs`, DESIGN.md §9)
//!   that drives the stack's push/pop, the queue's put/get ends and the
//!   counter's increments through a per-cell probe trait;
//! * [`params`] — window parameters and the Theorem 1 bound;
//! * [`window`] — the structure-agnostic hot-swappable window descriptor
//!   behind `retune`: online ("elastic") width/depth/shift changes with
//!   per-generation relaxation bounds, shared by the stack, the queue and
//!   the counter and driven through the [`ElasticTarget`] trait by the
//!   feedback controllers in the `stack2d-adaptive` crate;
//! * [`metrics`] — contention / probe / window-shift / retune counters
//!   ([`Stack2D::metrics`](stack::Stack2D::metrics), and the same block on
//!   [`Queue2D`] and [`Counter2D`]);
//! * [`telemetry`] — the [`Recorder`] emission hooks (sampled op spans,
//!   window-shift/retune/shrink-fence and controller-decision events)
//!   behind [`Builder::recorder`](builder::Builder::recorder), plus the
//!   shared telemetry clock; the ring-buffered sink lives in the
//!   `stack2d-telemetry` crate;
//! * [`queue2d`] and [`counter2d`] — the paper's stated future work (§5):
//!   the same window design generalized to a FIFO queue and a sharded
//!   counter, both elastic since PR 3;
//! * [`rng`] — the xorshift hop RNG.
//!
//! ## Memory reclamation
//!
//! The paper updates each sub-stack's `(top, count)` descriptor with a
//! 16-byte compare-and-exchange. This crate realizes the same atomicity by
//! swinging a descriptor *pointer* with a single-word CAS and retiring
//! displaced descriptors and nodes through epoch-based reclamation
//! (`crossbeam-epoch`); see `DESIGN.md` for the full substitution argument.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod counter2d;
mod engine;
#[cfg(test)]
mod layout;
pub mod metrics;
pub mod params;
mod pool;
pub mod queue2d;
pub mod rng;
pub mod search;
pub mod stack;
pub mod substack;
pub mod sync;
pub mod telemetry;
pub mod traits;
pub mod window;

pub use builder::{Buildable, Builder};
pub use counter2d::{Counter2D, CounterHandle};
pub use metrics::MetricsSnapshot;
pub use params::{Params, ParamsError};
pub use pool::{pool_stats, PoolStats};
pub use queue2d::{Queue2D, QueueHandle};
pub use search::{SearchConfig, SearchPolicy};
pub use stack::{Handle2D, Stack2D};
pub use telemetry::{NoopRecorder, Recorder};
pub use traits::{ConcurrentStack, ElasticTarget, OpsHandle, RelaxedOps, StackHandle, StackOps};
pub use window::{RetuneError, WindowInfo};
