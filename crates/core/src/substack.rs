//! Descriptor-based lock-free sub-stack — the building block of the 2D-Stack.
//!
//! Each sub-stack is a Treiber-style linked list governed by a single
//! **descriptor** holding the top-of-stack pointer *and* the item count.
//! The paper updates the two fields together with a 16-byte
//! compare-and-exchange (`CAE`, i.e. `cmpxchg16b`); stable Rust has no
//! 128-bit atomic, so this implementation realizes the identical atomicity
//! guarantee by *descriptor swinging*: the descriptor lives behind an
//! [`Atomic`] pointer, every update allocates a fresh descriptor and installs
//! it with a single-word CAS, and the displaced descriptor is reclaimed
//! through epoch-based reclamation (`crossbeam-epoch`). Readers therefore
//! always observe a mutually consistent `(top, count)` pair, exactly as with
//! `CAE` — see DESIGN.md §3 for the substitution rationale.
//!
//! The sub-stack is exposed publicly because the distribution baselines
//! (`random`, `random-c2`, `k-robin` in `stack2d-baselines`) are built from
//! the same block, as they are in the paper.

use crate::sync::atomic::Ordering;
use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;

use crossbeam_epoch::{Atomic, Guard, Owned, Pointer, Shared};

use crate::pool;

/// A node of the intrusive linked list that stores one item.
///
/// Nodes are immutable once published: `next` is written before the CAS that
/// makes the node reachable and never changes afterwards, so readers holding
/// an epoch guard may dereference it freely.
pub(crate) struct Node<T> {
    value: ManuallyDrop<T>,
    next: *const Node<T>,
}

/// The per-sub-stack descriptor of the paper (§3): the topmost-item pointer
/// and the item counter, always updated in one atomic step.
pub(crate) struct Descriptor<T> {
    top: *const Node<T>,
    count: usize,
}

// SAFETY: raw pointers poison auto-traits; the descriptor only *refers* to
// nodes that carry `T`, so the usual container bounds apply.
unsafe impl<T: Send> Send for Descriptor<T> {}
// SAFETY: as above — the descriptor itself holds no thread-affine state.
unsafe impl<T: Send> Sync for Descriptor<T> {}

/// A value boxed into a list node *before* knowing which sub-stack will take
/// it.
///
/// The 2D-Stack's push may probe many sub-stacks before one accepts the
/// item; preparing the node once avoids re-allocating on every failed CAS.
/// If a `PreparedNode` is dropped without being pushed, the value inside is
/// dropped normally.
///
/// # Examples
///
/// ```
/// use stack2d::substack::{PreparedNode, SubStack};
///
/// let stack = SubStack::new();
/// let node = PreparedNode::new(7usize);
/// let guard = crossbeam_epoch::pin();
/// let view = stack.view(&guard);
/// assert!(stack.try_push_at(&view, node, &guard).is_ok());
/// assert_eq!(stack.pop(), Some(7));
/// ```
pub struct PreparedNode<T> {
    raw: *mut Node<T>,
}

// SAFETY: the handle uniquely owns its boxed node (like `Box<Node<T>>`), so
// it may move between threads whenever the value itself can.
unsafe impl<T: Send> Send for PreparedNode<T> {}

impl<T> PreparedNode<T> {
    /// Boxes `value` into a node ready for [`SubStack::try_push_at`].
    pub fn new(value: T) -> Self {
        let raw = pool::boxed(Node { value: ManuallyDrop::new(value), next: ptr::null() });
        PreparedNode { raw }
    }

    /// Like [`PreparedNode::new`], but drawing the node's storage from the
    /// calling thread's node pool. Pooled and boxed nodes are freely
    /// interchangeable (every pool block originates from `Box::into_raw`),
    /// so the un-pushed paths ([`PreparedNode::into_value`], `Drop`) stay
    /// the plain boxed ones.
    pub(crate) fn new_pooled(value: T) -> Self {
        let raw = pool::alloc(Node { value: ManuallyDrop::new(value), next: ptr::null() });
        PreparedNode { raw }
    }

    /// Recovers the value, deallocating the node.
    pub fn into_value(self) -> T {
        // SAFETY: `raw` is the Box allocation made in `new` and still owned
        // by this handle (the node was never published to a list).
        let mut boxed = unsafe { Box::from_raw(self.raw) };
        // SAFETY: the value was initialized in `new` and is taken exactly
        // once — `forget(self)` below prevents the Drop impl from touching
        // it again.
        let value = unsafe { ManuallyDrop::take(&mut boxed.value) };
        core::mem::forget(self);
        value
    }
}

impl<T> Drop for PreparedNode<T> {
    fn drop(&mut self) {
        // SAFETY: an un-pushed node is still uniquely owned by the handle,
        // so both the allocation and the still-initialized value are ours
        // to free; the pushed path forgets the handle before this can run.
        unsafe {
            let mut boxed = Box::from_raw(self.raw);
            ManuallyDrop::drop(&mut boxed.value);
        }
    }
}

impl<T> fmt::Debug for PreparedNode<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedNode").finish_non_exhaustive()
    }
}

/// A consistent snapshot of a sub-stack's descriptor: the `(top, count)`
/// pair observed in one atomic load.
///
/// All `try_*_at` operations CAS against the exact descriptor captured here,
/// so a stale view can never be applied — the CAS fails instead and the
/// caller re-probes, which is precisely the contention signal the 2D-Stack's
/// search policy reacts to.
pub struct DescView<'g, T> {
    desc: Shared<'g, Descriptor<T>>,
    count: usize,
    empty: bool,
}

impl<'g, T> DescView<'g, T> {
    /// The item count recorded in the descriptor.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the sub-stack was empty at snapshot time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.empty
    }
}

impl<T> fmt::Debug for DescView<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DescView").field("count", &self.count).field("empty", &self.empty).finish()
    }
}

/// Error returned by a single-shot CAS attempt that lost a race.
///
/// Carries the prepared node back to the caller on push so the allocation is
/// reused on the next probe.
#[derive(Debug)]
pub struct Contended<P>(pub P);

/// A lock-free Treiber-style stack with an atomically maintained item count.
///
/// This is the unit sub-structure of the 2D design. It supports both
/// standalone use (the [`push`](SubStack::push) / [`pop`](SubStack::pop)
/// retry loops — used by the `random`/`random-c2`/`k-robin` baselines) and
/// single-attempt use against a validated snapshot (the `try_*_at` family —
/// used by the 2D window logic, which must check the count against `Global`
/// and apply the operation on the *same* descriptor).
///
/// # Examples
///
/// ```
/// use stack2d::substack::SubStack;
///
/// let s = SubStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct SubStack<T> {
    desc: Atomic<Descriptor<T>>,
    /// Whether retired descriptors/nodes are recycled through the node
    /// pool (`pool.rs`) instead of freed; set once at construction.
    pooled: bool,
}

// SAFETY: the stack owns its nodes and hands values across threads only by
// moving them out, so `T: Send` is the full requirement (same bounds as a
// `Mutex<Vec<T>>`; the raw pointers are what suppress the auto-impl).
unsafe impl<T: Send> Send for SubStack<T> {}
// SAFETY: as above — shared access is mediated by the descriptor CAS.
unsafe impl<T: Send> Sync for SubStack<T> {}

impl<T> SubStack<T> {
    /// Creates an empty sub-stack (descriptor `{top: null, count: 0}`).
    pub fn new() -> Self {
        SubStack { desc: Atomic::new(Descriptor { top: ptr::null(), count: 0 }), pooled: false }
    }

    /// Creates an empty sub-stack whose retired descriptors and nodes are
    /// recycled through the thread-local node pool
    /// ([`Builder::node_pool`](crate::Builder::node_pool)'s default path).
    pub(crate) fn new_pooled() -> Self {
        SubStack { desc: Atomic::new(Descriptor { top: ptr::null(), count: 0 }), pooled: true }
    }

    /// Allocates a descriptor on the structure's configured path (pool or
    /// plain box); either way the block is `Box`-compatible.
    #[inline]
    fn alloc_desc(&self, desc: Descriptor<T>) -> Owned<Descriptor<T>> {
        let raw = if self.pooled { pool::alloc(desc) } else { pool::boxed(desc) };
        // SAFETY: `raw` is a unique, Box-compatible allocation from the
        // pool or the allocator, owned by no one else.
        unsafe { Owned::from_raw_ptr(raw) }
    }

    /// Retires a displaced descriptor on the structure's configured path.
    ///
    /// # Safety
    ///
    /// Same contract as `Guard::defer_destroy`: `desc` must be unlinked
    /// and retired exactly once.
    #[inline]
    unsafe fn retire_desc<'g>(&self, desc: Shared<'g, Descriptor<T>>, guard: &'g Guard) {
        // Descriptors hold only raw pointers and a count — no drop glue —
        // so recycling storage is exactly equivalent to the Box drop.
        if self.pooled {
            // SAFETY: forwarded caller contract; `recycle` fully reclaims
            // the block and is safe from any thread.
            unsafe { guard.defer_destroy_with(desc, pool::recycle::<Descriptor<T>>) };
        } else {
            // SAFETY: forwarded caller contract.
            unsafe { guard.defer_destroy(desc) };
        }
    }

    /// Takes a consistent `(top, count)` snapshot.
    #[inline]
    pub fn view<'g>(&self, guard: &'g Guard) -> DescView<'g, T> {
        let desc = self.desc.load(Ordering::Acquire, guard);
        // SAFETY: the descriptor pointer is never null (construction installs
        // one and every CAS replaces it with another), and the epoch guard
        // keeps the loaded descriptor alive.
        let d = unsafe { desc.deref() };
        DescView { desc, count: d.count, empty: d.top.is_null() }
    }

    /// The item count at this instant (a fresh snapshot's count).
    #[inline]
    pub fn len(&self) -> usize {
        let guard = crossbeam_epoch::pin();
        self.view(&guard).count()
    }

    /// Whether the sub-stack is empty at this instant.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts one push of `node` against the snapshot `view`.
    ///
    /// Returns the node back inside [`Contended`] if another thread won the
    /// descriptor CAS in between — the 2D search policy responds to that
    /// with a random hop (§3: contention avoidance).
    ///
    /// # Errors
    ///
    /// [`Contended`] when the descriptor changed since `view` was taken.
    pub fn try_push_at<'g>(
        &self,
        view: &DescView<'g, T>,
        node: PreparedNode<T>,
        guard: &'g Guard,
    ) -> Result<(), Contended<PreparedNode<T>>> {
        // SAFETY: `view` was taken under `guard`, which pins the epoch the
        // descriptor was reachable in.
        let old = unsafe { view.desc.deref() };
        // SAFETY: link the node in front of the current top — the node is
        // private until the CAS below succeeds, so the plain write cannot
        // race.
        unsafe { (*node.raw).next = old.top };
        let new = self.alloc_desc(Descriptor { top: node.raw as *const _, count: old.count + 1 });
        match self.desc.compare_exchange(view.desc, new, Ordering::AcqRel, Ordering::Acquire, guard)
        {
            Ok(_) => {
                // The node is now owned by the list; forget the handle.
                core::mem::forget(node);
                // SAFETY: our CAS unlinked the displaced descriptor, and only
                // the CAS winner retires it; concurrent snapshot holders are
                // protected by their own guards until reclamation.
                unsafe { self.retire_desc(view.desc, guard) };
                Ok(())
            }
            Err(_) => Err(Contended(node)),
        }
    }

    /// Attempts one pop against the snapshot `view`.
    ///
    /// `Ok(None)` means the snapshot showed an empty sub-stack (a definite
    /// observation, not a race).
    ///
    /// # Errors
    ///
    /// [`Contended`] when the descriptor changed since `view` was taken.
    pub fn try_pop_at<'g>(
        &self,
        view: &DescView<'g, T>,
        guard: &'g Guard,
    ) -> Result<Option<T>, Contended<()>> {
        // SAFETY: `view` was taken under `guard`, which pins the epoch the
        // descriptor was reachable in.
        let old = unsafe { view.desc.deref() };
        if old.top.is_null() {
            debug_assert_eq!(old.count, 0, "descriptor invariant: null top implies count 0");
            return Ok(None);
        }
        // SAFETY: the epoch guard keeps every node that was reachable at
        // snapshot time alive, and `top` was non-null above.
        let top = unsafe { &*old.top };
        let new = self.alloc_desc(Descriptor { top: top.next, count: old.count - 1 });
        match self.desc.compare_exchange(view.desc, new, Ordering::AcqRel, Ordering::Acquire, guard)
        {
            Ok(_) => {
                // SAFETY: we won the pop CAS, so we hold the unique right to
                // consume this node's value; `value` is `ManuallyDrop`, so
                // the deferred node deallocation won't double-drop it.
                let value = unsafe { ptr::read(&*top.value) };
                // Node and descriptor were unlinked by the same CAS, so
                // they are retired as a pair: one epoch fence instead of
                // two. Both reclaims are storage-only — the node's value
                // was consumed above and descriptors carry no drop glue —
                // so the unpooled hooks match what `Box::from_raw` did.
                type Destroy = unsafe fn(*mut ());
                let (destroy_node, destroy_desc): (Destroy, Destroy) = if self.pooled {
                    (pool::recycle::<Node<T>>, pool::recycle::<Descriptor<T>>)
                } else {
                    (pool::free_block::<Node<T>>, pool::free_block::<Descriptor<T>>)
                };
                // SAFETY: the CAS unlinked both the node and the displaced
                // descriptor; only the winner retires them, exactly once.
                unsafe {
                    guard.defer_destroy_pair_with(
                        Shared::from(old.top),
                        destroy_node,
                        view.desc,
                        destroy_desc,
                    );
                }
                Ok(Some(value))
            }
            Err(_) => Err(Contended(())),
        }
    }

    /// Pushes `value`, retrying until the CAS succeeds (plain Treiber loop).
    pub fn push(&self, value: T) {
        let mut node =
            if self.pooled { PreparedNode::new_pooled(value) } else { PreparedNode::new(value) };
        let guard = crossbeam_epoch::pin();
        loop {
            let view = self.view(&guard);
            match self.try_push_at(&view, node, &guard) {
                Ok(()) => return,
                Err(Contended(n)) => node = n,
            }
        }
    }

    /// Pops the top item, retrying on contention; `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let guard = crossbeam_epoch::pin();
        loop {
            let view = self.view(&guard);
            match self.try_pop_at(&view, &guard) {
                Ok(v) => return v,
                Err(Contended(())) => continue,
            }
        }
    }
}

impl<T> Default for SubStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for SubStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubStack").field("len", &self.len()).finish()
    }
}

impl<T> Drop for SubStack<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access — no guards can be
        // pinned on this stack any more, so walking and freeing directly
        // (including the `ManuallyDrop` values, never consumed for nodes
        // still in the list) is sound.
        unsafe {
            let guard = crossbeam_epoch::unprotected();
            let desc = self.desc.load(Ordering::Relaxed, guard);
            let mut cur = desc.deref().top;
            while !cur.is_null() {
                let mut boxed = Box::from_raw(cur as *mut Node<T>);
                ManuallyDrop::drop(&mut boxed.value);
                cur = boxed.next;
            }
            drop(desc.into_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering as AOrd};
    use crate::sync::Arc;

    #[test]
    fn new_stack_is_empty() {
        let s: SubStack<u32> = SubStack::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn push_pop_is_lifo() {
        let s = SubStack::new();
        for i in 0..100 {
            s.push(i);
        }
        assert_eq!(s.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn view_count_tracks_operations() {
        let s = SubStack::new();
        let guard = crossbeam_epoch::pin();
        assert_eq!(s.view(&guard).count(), 0);
        assert!(s.view(&guard).is_empty());
        s.push("a");
        assert_eq!(s.view(&guard).count(), 1);
        assert!(!s.view(&guard).is_empty());
        s.pop();
        assert_eq!(s.view(&guard).count(), 0);
    }

    #[test]
    fn try_push_at_fails_on_stale_view() {
        let s = SubStack::new();
        let guard = crossbeam_epoch::pin();
        let stale = s.view(&guard);
        s.push(1); // invalidates `stale`
        let node = PreparedNode::new(2);
        let err = s.try_push_at(&stale, node, &guard);
        assert!(err.is_err(), "stale view must not be applied");
        // The node comes back and its value is recoverable.
        let Err(Contended(n)) = err else { unreachable!() };
        assert_eq!(n.into_value(), 2);
    }

    #[test]
    fn try_pop_at_fails_on_stale_view() {
        let s = SubStack::new();
        s.push(1);
        let guard = crossbeam_epoch::pin();
        let stale = s.view(&guard);
        s.push(2);
        assert!(s.try_pop_at(&stale, &guard).is_err());
    }

    #[test]
    fn try_pop_at_reports_definite_empty() {
        let s: SubStack<u8> = SubStack::new();
        let guard = crossbeam_epoch::pin();
        let view = s.view(&guard);
        assert!(matches!(s.try_pop_at(&view, &guard), Ok(None)));
    }

    #[test]
    fn prepared_node_drop_drops_value() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let node = PreparedNode::new(Canary(drops.clone()));
        drop(node);
        assert_eq!(drops.load(AOrd::SeqCst), 1);
    }

    #[test]
    fn prepared_node_into_value_round_trips() {
        let node = PreparedNode::new(String::from("payload"));
        assert_eq!(node.into_value(), "payload");
    }

    #[test]
    fn dropping_nonempty_stack_drops_items_exactly_once() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s = SubStack::new();
            for _ in 0..10 {
                s.push(Canary(drops.clone()));
            }
            // Pop a few so both popped and resident items are covered.
            drop(s.pop());
            drop(s.pop());
        }
        // Give epoch reclamation a nudge; resident items are freed in Drop.
        assert_eq!(drops.load(AOrd::SeqCst), 10);
    }

    #[test]
    fn concurrent_push_pop_conserves_items() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        let s = Arc::new(SubStack::new());
        let popped = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            let popped = Arc::clone(&popped);
            joins.push(crate::sync::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    s.push(t * PER_THREAD + i);
                    if s.pop().is_some() {
                        popped.fetch_add(1, AOrd::SeqCst);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let remaining = {
            let mut n = 0;
            while s.pop().is_some() {
                n += 1;
            }
            n
        };
        assert_eq!(
            popped.load(AOrd::SeqCst) + remaining,
            THREADS * PER_THREAD,
            "every pushed item must be popped exactly once"
        );
    }

    #[test]
    fn count_never_desynchronizes_under_concurrency() {
        let s = Arc::new(SubStack::new());
        let stop = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            joins.push(crate::sync::thread::spawn(move || {
                while stop.load(AOrd::SeqCst) == 0 {
                    s.push(1u8);
                    s.pop();
                }
            }));
        }
        for _ in 0..1_000 {
            let guard = crossbeam_epoch::pin();
            let v = s.view(&guard);
            // count and emptiness always agree because they come from one
            // descriptor.
            assert_eq!(v.count() == 0, v.is_empty());
        }
        stop.store(1, AOrd::SeqCst);
        for j in joins {
            j.join().unwrap();
        }
    }
}
