//! Operation metrics: counters for the events the paper's §3 design
//! discussion is about.
//!
//! The 2D-Stack's performance argument rests on *event frequencies*: how
//! often a CAS is lost (contention), how often the search restarts on a
//! `Global` change, how many sub-stacks are probed per operation, how often
//! the window shifts. These counters make those frequencies observable so
//! the ablation experiments can explain throughput differences instead of
//! just reporting them.
//!
//! Counters are relaxed atomics bumped once per *event batch* (probes are
//! accumulated locally and added once per operation), keeping overhead
//! in the low single-digit percent range; they are always on.
//!
//! All three windowed structures carry the same counter block, so the
//! elastic runtime's window-pressure signal
//! (`stack2d-adaptive::Observation::window_pressure`) reads identically
//! off a [`Stack2D`](crate::Stack2D), a [`Queue2D`](crate::Queue2D) or a
//! [`Counter2D`](crate::Counter2D). For the queue, `shifts_up` counts put
//! window shifts and `shifts_down` get window shifts (both globals only
//! move forward); for the counter only the push-side counters are
//! populated.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use core::fmt;

use crossbeam_utils::CachePadded;

/// Internal counter block owned by each windowed structure
/// ([`Stack2D`](crate::Stack2D), [`Queue2D`](crate::Queue2D),
/// [`Counter2D`](crate::Counter2D)).
#[derive(Debug, Default)]
pub(crate) struct OpCounters {
    /// Descriptor CASes lost to another thread.
    pub cas_failures: CachePadded<AtomicU64>,
    /// Sub-stack validations performed (window checks).
    pub probes: CachePadded<AtomicU64>,
    /// Successful `Global` raises (push side).
    pub shifts_up: CachePadded<AtomicU64>,
    /// Successful `Global` lowers (pop side).
    pub shifts_down: CachePadded<AtomicU64>,
    /// Search rounds abandoned because `Global` changed mid-search.
    pub global_restarts: CachePadded<AtomicU64>,
    /// Pops that returned `None` after a covering sweep saw all empty.
    pub empty_pops: CachePadded<AtomicU64>,
    /// Completed operations (pushes + pops, including empty pops).
    pub ops: CachePadded<AtomicU64>,
    /// Operations completed inside a batched call (`push_n`/`pop_n`);
    /// a subset of `ops`.
    pub batched_ops: CachePadded<AtomicU64>,
    /// Engine invocations (one per `push`/`pop`/`increment` and one per
    /// whole batched call) — the denominator that keeps per-search-round
    /// rates honest under batching.
    pub search_rounds: CachePadded<AtomicU64>,
    /// Window-descriptor swings (retunes and shrink commits).
    pub retunes: CachePadded<AtomicU64>,
}

impl OpCounters {
    #[inline]
    pub(crate) fn add(&self, field: impl Fn(&Self) -> &CachePadded<AtomicU64>, n: u64) {
        if n > 0 {
            field(self).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Single-writer add for per-handle blocks ([`CounterHub::register`]):
    /// only the owning handle ever writes the block, so a relaxed
    /// load+store replaces the locked read-modify-write — the difference
    /// is most of the metrics overhead of an uncontended op.
    #[inline]
    pub(crate) fn bump(&self, field: impl Fn(&Self) -> &CachePadded<AtomicU64>, n: u64) {
        if n > 0 {
            let f = field(self);
            f.store(f.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
        }
    }

    /// Folds this block into `base` (handle drop: the retiring handle's
    /// counts move to the structure's shared block).
    fn merge_into(&self, base: &OpCounters) {
        base.add(|c| &c.cas_failures, self.cas_failures.load(Ordering::Relaxed));
        base.add(|c| &c.probes, self.probes.load(Ordering::Relaxed));
        base.add(|c| &c.shifts_up, self.shifts_up.load(Ordering::Relaxed));
        base.add(|c| &c.shifts_down, self.shifts_down.load(Ordering::Relaxed));
        base.add(|c| &c.global_restarts, self.global_restarts.load(Ordering::Relaxed));
        base.add(|c| &c.empty_pops, self.empty_pops.load(Ordering::Relaxed));
        base.add(|c| &c.ops, self.ops.load(Ordering::Relaxed));
        base.add(|c| &c.batched_ops, self.batched_ops.load(Ordering::Relaxed));
        base.add(|c| &c.search_rounds, self.search_rounds.load(Ordering::Relaxed));
        base.add(|c| &c.retunes, self.retunes.load(Ordering::Relaxed));
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            shifts_up: self.shifts_up.load(Ordering::Relaxed),
            shifts_down: self.shifts_down.load(Ordering::Relaxed),
            global_restarts: self.global_restarts.load(Ordering::Relaxed),
            empty_pops: self.empty_pops.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            search_rounds: self.search_rounds.load(Ordering::Relaxed),
            retunes: self.retunes.load(Ordering::Relaxed),
        }
    }

    #[cfg(test)]
    pub(crate) fn reset(&self) {
        self.cas_failures.store(0, Ordering::Relaxed);
        self.probes.store(0, Ordering::Relaxed);
        self.shifts_up.store(0, Ordering::Relaxed);
        self.shifts_down.store(0, Ordering::Relaxed);
        self.global_restarts.store(0, Ordering::Relaxed);
        self.empty_pops.store(0, Ordering::Relaxed);
        self.ops.store(0, Ordering::Relaxed);
        self.batched_ops.store(0, Ordering::Relaxed);
        self.search_rounds.store(0, Ordering::Relaxed);
        self.retunes.store(0, Ordering::Relaxed);
    }
}

/// The counter state a windowed structure owns: one shared block for
/// structure-level events (retunes) and retired handles, plus one
/// **per-handle** block per live handle.
///
/// Handles write only their own block ([`OpCounters::bump`] — plain
/// relaxed load+store, no locked read-modify-write), which removes the
/// per-op atomic-RMW tax *and* the false-sharing between handles that a
/// single shared block would cost under contention. [`CounterHub::snapshot`]
/// sums base + live blocks, so `metrics()` stays exact at every instant;
/// a dropped handle folds its block into the base first.
#[derive(Debug, Default)]
pub(crate) struct CounterHub {
    base: OpCounters,
    inner: Mutex<HubInner>,
}

#[derive(Debug, Default)]
struct HubInner {
    locals: Vec<Arc<OpCounters>>,
    /// Raw totals at the last [`CounterHub::reset`]: per-handle blocks are
    /// single-writer and must never be stored to from outside, so a reset
    /// subtracts instead of zeroing.
    baseline: MetricsSnapshot,
}

impl CounterHub {
    /// Structure-level events (retunes, shrink commits) — multi-writer,
    /// goes to the shared base block.
    #[inline]
    pub(crate) fn add(&self, field: impl Fn(&OpCounters) -> &CachePadded<AtomicU64>, n: u64) {
        self.base.add(field, n);
    }

    /// A fresh per-handle block, summed into snapshots while registered.
    /// The caller must pass it back to [`CounterHub::release`] when the
    /// handle drops.
    pub(crate) fn register(&self) -> Arc<OpCounters> {
        let block = Arc::new(OpCounters::default());
        self.inner.lock().locals.push(Arc::clone(&block));
        block
    }

    /// Unregisters a handle's block, folding its counts into the base so
    /// totals are unaffected by the handle's lifetime.
    pub(crate) fn release(&self, block: &Arc<OpCounters>) {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.locals.iter().position(|b| Arc::ptr_eq(b, block)) {
            inner.locals.swap_remove(i);
        }
        block.merge_into(&self.base);
    }

    /// Raw monotone totals: base plus every live handle block.
    fn raw(&self, inner: &HubInner) -> MetricsSnapshot {
        let mut total = self.base.snapshot();
        for block in &inner.locals {
            total = total.merged(&block.snapshot());
        }
        total
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        self.raw(&inner).delta_since(&inner.baseline)
    }

    /// Zeroes the observable counters by re-basing the subtraction point
    /// (per-handle blocks are single-writer, so they cannot be stored to
    /// from here).
    pub(crate) fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.baseline = self.raw(&inner);
    }
}

/// A point-in-time copy of a stack's operation counters.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Stack2D};
///
/// let stack = Stack2D::new(Params::new(2, 1, 1).unwrap());
/// for i in 0..10 {
///     stack.push(i);
/// }
/// let m = stack.metrics();
/// assert_eq!(m.ops, 10);
/// // 2 sub-stacks of depth 1 can hold 2 items per window: pushing 10
/// // items must have raised the window several times.
/// assert!(m.shifts_up >= 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Descriptor CASes lost to another thread.
    pub cas_failures: u64,
    /// Sub-stack validations performed.
    pub probes: u64,
    /// Successful `Global` raises.
    pub shifts_up: u64,
    /// Successful `Global` lowers.
    pub shifts_down: u64,
    /// Search rounds restarted due to an observed `Global` change.
    pub global_restarts: u64,
    /// Pops that reported empty.
    pub empty_pops: u64,
    /// Completed operations.
    pub ops: u64,
    /// Operations completed inside a batched call (subset of `ops`).
    /// Absent from snapshots recorded before PR 10; readers treat it as 0.
    pub batched_ops: u64,
    /// Engine invocations (one per singular op, one per batched call).
    /// Absent from snapshots recorded before PR 10; readers treat it as 0.
    pub search_rounds: u64,
    /// Window-descriptor swings (retunes and shrink commits).
    pub retunes: u64,
}

impl MetricsSnapshot {
    /// The counter increments since an `earlier` snapshot of the same
    /// stack (saturating, so a reset in between yields zeros instead of
    /// wrapping). This is what feedback controllers sample on a cadence.
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::{Params, Stack2D};
    ///
    /// let stack = Stack2D::new(Params::default());
    /// stack.push(1);
    /// let before = stack.metrics();
    /// stack.push(2);
    /// stack.push(3);
    /// assert_eq!(stack.metrics().delta_since(&before).ops, 2);
    /// ```
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            cas_failures: self.cas_failures.saturating_sub(earlier.cas_failures),
            probes: self.probes.saturating_sub(earlier.probes),
            shifts_up: self.shifts_up.saturating_sub(earlier.shifts_up),
            shifts_down: self.shifts_down.saturating_sub(earlier.shifts_down),
            global_restarts: self.global_restarts.saturating_sub(earlier.global_restarts),
            empty_pops: self.empty_pops.saturating_sub(earlier.empty_pops),
            ops: self.ops.saturating_sub(earlier.ops),
            batched_ops: self.batched_ops.saturating_sub(earlier.batched_ops),
            search_rounds: self.search_rounds.saturating_sub(earlier.search_rounds),
            retunes: self.retunes.saturating_sub(earlier.retunes),
        }
    }
    /// Fieldwise sum (wrapping like the underlying counters), used to fold
    /// per-handle blocks into one total.
    pub(crate) fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            cas_failures: self.cas_failures.wrapping_add(other.cas_failures),
            probes: self.probes.wrapping_add(other.probes),
            shifts_up: self.shifts_up.wrapping_add(other.shifts_up),
            shifts_down: self.shifts_down.wrapping_add(other.shifts_down),
            global_restarts: self.global_restarts.wrapping_add(other.global_restarts),
            empty_pops: self.empty_pops.wrapping_add(other.empty_pops),
            ops: self.ops.wrapping_add(other.ops),
            batched_ops: self.batched_ops.wrapping_add(other.batched_ops),
            search_rounds: self.search_rounds.wrapping_add(other.search_rounds),
            retunes: self.retunes.wrapping_add(other.retunes),
        }
    }

    /// Average sub-stack validations per completed operation — the paper's
    /// step-complexity proxy. Zero when no ops completed.
    pub fn probes_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.probes as f64 / self.ops as f64
        }
    }

    /// Fraction of operations that lost at least the counted CASes (an
    /// upper estimate of the contention rate). Zero when no ops completed.
    pub fn contention_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.cas_failures as f64 / self.ops as f64
        }
    }

    /// Window shifts (either direction) per operation.
    pub fn shift_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            (self.shifts_up + self.shifts_down) as f64 / self.ops as f64
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops={} (batched {}) rounds={} probes/op={:.2} cas-fail={} shifts(up/down)={}/{} restarts={} empty={} retunes={}",
            self.ops,
            self.batched_ops,
            self.search_rounds,
            self.probes_per_op(),
            self.cas_failures,
            self.shifts_up,
            self.shifts_down,
            self.global_restarts,
            self.empty_pops,
            self.retunes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot_is_zero() {
        let m = MetricsSnapshot::default();
        assert_eq!(m.probes_per_op(), 0.0);
        assert_eq!(m.contention_rate(), 0.0);
        assert_eq!(m.shift_rate(), 0.0);
    }

    #[test]
    fn rates_divide_by_ops() {
        let m = MetricsSnapshot {
            cas_failures: 5,
            probes: 30,
            shifts_up: 2,
            shifts_down: 1,
            ops: 10,
            ..Default::default()
        };
        assert_eq!(m.probes_per_op(), 3.0);
        assert_eq!(m.contention_rate(), 0.5);
        assert!((m.shift_rate() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn delta_since_subtracts_fieldwise_and_saturates() {
        let a = MetricsSnapshot { ops: 10, probes: 20, cas_failures: 3, ..Default::default() };
        let b = MetricsSnapshot { ops: 25, probes: 21, cas_failures: 3, ..Default::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.ops, 15);
        assert_eq!(d.probes, 1);
        assert_eq!(d.cas_failures, 0);
        // A reset between snapshots saturates to zero instead of wrapping.
        assert_eq!(a.delta_since(&b).ops, 0);
    }

    #[test]
    fn counters_snapshot_and_reset() {
        let c = OpCounters::default();
        c.add(|c| &c.probes, 7);
        c.add(|c| &c.ops, 2);
        c.add(|c| &c.cas_failures, 0); // no-op
        let snap = c.snapshot();
        assert_eq!(snap.probes, 7);
        assert_eq!(snap.ops, 2);
        assert_eq!(snap.cas_failures, 0);
        c.reset();
        assert_eq!(c.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn display_mentions_core_fields() {
        let s = MetricsSnapshot { ops: 4, probes: 8, ..Default::default() }.to_string();
        assert!(s.contains("ops=4"));
        assert!(s.contains("probes/op=2.00"));
    }
}
