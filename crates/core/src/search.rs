//! Window-search policies: how a thread walks a sub-structure array looking
//! for a window-valid cell.
//!
//! The paper's policy (§3) is two-phase: *"First the thread tries a given
//! number of random hops, then switches to round robin until a valid
//! sub-stack is found, or the thread updates the Global, after failing on all
//! sub-stacks."* The round-robin phase guarantees full coverage, which is
//! what makes the "no valid sub-stack ⇒ shift the window" decision sound.
//!
//! Two further behaviours are part of the policy:
//! * **locality** — each search starts from the cell on which the thread
//!   last succeeded;
//! * **contention avoidance** — a failed CAS triggers a *random* hop instead
//!   of a retry on the same cell.
//!
//! Nothing here is stack-specific: since the unified search engine
//! (`engine.rs`) took over the hot loops, the same [`SearchPolicy`] and
//! [`SearchConfig`] govern [`Stack2D`](crate::Stack2D),
//! [`Queue2D`](crate::Queue2D) and [`Counter2D`](crate::Counter2D) alike —
//! which is what lets the ablation results (`stack2d-harness`, `ablation`
//! binary) transfer across structures. Default policies differ per
//! structure: the stack keeps the paper's two-phase default, while the
//! queue and counter default to [`SearchPolicy::RoundRobinOnly`], their
//! historical covering sweep (probe counts are pinned by regression
//! tests).

use crate::params::Params;
use crate::rng::HopRng;

/// How candidate sub-stacks are enumerated during a search round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchPolicy {
    /// The paper's default: `random_hops` random probes, then a full
    /// round-robin sweep (guaranteeing every sub-stack is examined before a
    /// `Global` shift is proposed).
    TwoPhase {
        /// Number of random probes before switching to round-robin.
        random_hops: usize,
    },
    /// Ablation: no random phase, pure round-robin sweep from the starting
    /// index. This is the behaviour the paper attributes to `k-robin`'s
    /// search and blames for contention on consecutive sub-stacks.
    RoundRobinOnly,
    /// Ablation: the *search* phase is purely random (`2 * width` probes,
    /// no locality-guided start). The trailing covering sweep is retained —
    /// without full coverage, "no valid sub-stack" and "all empty" verdicts
    /// would be probabilistic, which is a correctness property, not a
    /// search-policy choice.
    RandomOnly,
}

impl Default for SearchPolicy {
    /// The paper's two-phase policy with a single random hop.
    fn default() -> Self {
        SearchPolicy::TwoPhase { random_hops: 1 }
    }
}

/// Full behavioural configuration of a windowed structure
/// ([`Stack2D`](crate::Stack2D), [`Queue2D`](crate::Queue2D) or
/// [`Counter2D`](crate::Counter2D)).
///
/// Bundles the window [`Params`] with the search-policy knobs so ablation
/// experiments can toggle one mechanism at a time — on any of the three
/// structures, via their `with_config` constructors or the
/// [`Builder`](crate::Builder)'s `search_policy` / `hop_on_contention` /
/// `locality` setters.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, SearchConfig, SearchPolicy};
///
/// # fn main() -> Result<(), stack2d::ParamsError> {
/// let cfg = SearchConfig::new(Params::new(8, 2, 1)?)
///     .search_policy(SearchPolicy::RoundRobinOnly)
///     .hop_on_contention(false);
/// assert!(!cfg.hops_on_contention());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SearchConfig {
    params: Params,
    policy: SearchPolicy,
    hop_on_contention: bool,
    locality: bool,
    max_width: Option<usize>,
    node_pool: bool,
}

impl SearchConfig {
    /// Configuration with the paper's default behaviour for the given window
    /// parameters.
    pub fn new(params: Params) -> Self {
        SearchConfig {
            params,
            policy: SearchPolicy::default(),
            hop_on_contention: true,
            locality: true,
            max_width: None,
            node_pool: true,
        }
    }

    /// Replaces the search policy.
    #[must_use]
    pub fn search_policy(mut self, policy: SearchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables/disables the random hop after a failed CAS (paper default:
    /// enabled).
    #[must_use]
    pub fn hop_on_contention(mut self, enabled: bool) -> Self {
        self.hop_on_contention = enabled;
        self
    }

    /// Enables/disables starting each search at the last successful
    /// sub-stack (paper default: enabled).
    #[must_use]
    pub fn locality(mut self, enabled: bool) -> Self {
        self.locality = enabled;
        self
    }

    /// Pre-sizes the sub-structure array to `max_width`, the ceiling for
    /// online retunes ([`Stack2D::retune`](crate::Stack2D::retune) and its
    /// queue/counter twins; default: the initial `width`, i.e. a
    /// fixed-width structure). Values below the initial width are clamped
    /// up to it.
    #[must_use]
    pub fn max_width(mut self, max_width: usize) -> Self {
        self.max_width = Some(max_width);
        self
    }

    /// Enables/disables recycling retired descriptors and nodes through
    /// the thread-local node pool (`pool.rs`; default: enabled). Disabling
    /// routes every hot-path allocation through the plain allocator — the
    /// configuration the pooled/boxed parity tests and benches compare
    /// against.
    #[must_use]
    pub fn node_pool(mut self, enabled: bool) -> Self {
        self.node_pool = enabled;
        self
    }

    /// The window parameters.
    #[inline]
    pub fn params(&self) -> Params {
        self.params
    }

    /// The active search policy.
    #[inline]
    pub fn policy(&self) -> SearchPolicy {
        self.policy
    }

    /// Whether a failed CAS triggers a random hop.
    #[inline]
    pub fn hops_on_contention(&self) -> bool {
        self.hop_on_contention
    }

    /// Whether searches start from the last successful sub-stack.
    #[inline]
    pub fn uses_locality(&self) -> bool {
        self.locality
    }

    /// Whether retired descriptors/nodes are recycled through the node
    /// pool.
    #[inline]
    pub fn uses_node_pool(&self) -> bool {
        self.node_pool
    }

    /// Number of sub-structures the structure allocates: the configured
    /// [`SearchConfig::max_width`], floored at the initial width.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.max_width.unwrap_or(0).max(self.params.width())
    }
}

impl From<Params> for SearchConfig {
    fn from(params: Params) -> Self {
        SearchConfig::new(params)
    }
}

/// Iterator over candidate sub-stack indices for one search round.
///
/// Yields indices according to the policy; after it is exhausted the caller
/// knows (for the covering policies) that *every* sub-stack was probed and
/// found invalid under the `Global` value the round started with, which is
/// the precondition for proposing a window shift.
#[derive(Debug)]
pub struct Probes<'r> {
    policy: SearchPolicy,
    width: usize,
    start: usize,
    issued: usize,
    /// Index the round-robin phase continues from (set by the random phase).
    rr_cursor: usize,
    rng: &'r mut HopRng,
}

impl<'r> Probes<'r> {
    /// Starts a search round of `policy` over `width` sub-stacks beginning
    /// at `start`.
    pub fn new(policy: SearchPolicy, width: usize, start: usize, rng: &'r mut HopRng) -> Self {
        debug_assert!(width > 0);
        let start = start % width;
        Probes { policy, width, start, issued: 0, rr_cursor: start, rng }
    }

    /// Total number of probes this round will issue.
    pub fn budget(&self) -> usize {
        match self.policy {
            SearchPolicy::TwoPhase { random_hops } => {
                // The first probe is the locality-preserving start index
                // itself, then `random_hops` random probes, then a full
                // round-robin sweep.
                1 + random_hops.min(self.width) + self.width
            }
            SearchPolicy::RoundRobinOnly => self.width,
            SearchPolicy::RandomOnly => 3 * self.width,
        }
    }

    /// Number of trailing probes that constitute the full-coverage sweep.
    /// Every policy ends with one: exhaustion ("shift the window") and
    /// emptiness ("return `None`") verdicts are only sound after probing
    /// every sub-stack.
    pub fn coverage_len(&self) -> usize {
        self.width
    }

    /// Whether probe number `i` (0-based, as yielded) belongs to the
    /// full-coverage round-robin sweep. Used by the pop path: the "all
    /// sub-stacks empty" verdict may only be derived from a covering sweep.
    pub fn in_coverage(&self, i: usize) -> bool {
        i + self.coverage_len() >= self.budget() && self.coverage_len() > 0
    }
}

impl Iterator for Probes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.issued >= self.budget() {
            return None;
        }
        let i = self.issued;
        self.issued += 1;
        let idx = match self.policy {
            SearchPolicy::TwoPhase { random_hops } => {
                let hops = random_hops.min(self.width);
                if i == 0 {
                    // Locality: re-examine the last successful sub-stack.
                    self.start
                } else if i <= hops {
                    let r = self.rng.bounded(self.width);
                    self.rr_cursor = r;
                    r
                } else {
                    // Round-robin sweep resumes from wherever the random
                    // phase ended, covering `width` consecutive indices.
                    let step = i - hops; // 1-based within the sweep
                    (self.rr_cursor + step) % self.width
                }
            }
            SearchPolicy::RoundRobinOnly => (self.start + i) % self.width,
            SearchPolicy::RandomOnly => {
                let random_phase = 2 * self.width;
                if i < random_phase {
                    let r = self.rng.bounded(self.width);
                    self.rr_cursor = r;
                    r
                } else {
                    // Covering sweep resuming from the last random probe.
                    (self.rr_cursor + (i - random_phase) + 1) % self.width
                }
            }
        };
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.budget() - self.issued;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(policy: SearchPolicy, width: usize, start: usize, seed: u64) -> Vec<usize> {
        let mut rng = HopRng::seeded(seed);
        Probes::new(policy, width, start, &mut rng).collect()
    }

    #[test]
    fn two_phase_starts_at_locality_index() {
        let v = collect(SearchPolicy::TwoPhase { random_hops: 2 }, 8, 5, 1);
        assert_eq!(v[0], 5);
    }

    #[test]
    fn two_phase_coverage_sweep_visits_every_substack() {
        for width in 1..12 {
            for seed in 0..8 {
                let v = collect(SearchPolicy::TwoPhase { random_hops: 2 }, width, 0, seed);
                let sweep: Vec<usize> = v[v.len() - width..].to_vec();
                let mut seen = vec![false; width];
                for i in sweep {
                    seen[i] = true;
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "sweep missed a sub-stack for width={width} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn round_robin_only_is_a_permutation() {
        for width in 1..12 {
            for start in 0..width {
                let v = collect(SearchPolicy::RoundRobinOnly, width, start, 0);
                assert_eq!(v.len(), width);
                let mut sorted = v.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..width).collect::<Vec<_>>());
                assert_eq!(v[0], start);
            }
        }
    }

    #[test]
    fn random_only_budget_is_three_sweeps() {
        let v = collect(SearchPolicy::RandomOnly, 5, 0, 42);
        assert_eq!(v.len(), 15);
        assert!(v.iter().all(|&i| i < 5));
    }

    #[test]
    fn random_only_ends_with_a_covering_sweep() {
        for width in 1..10 {
            for seed in 0..8 {
                let v = collect(SearchPolicy::RandomOnly, width, 0, seed);
                let sweep = &v[v.len() - width..];
                let mut seen = vec![false; width];
                for &i in sweep {
                    seen[i] = true;
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "random-only sweep missed a sub-stack: width={width} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn coverage_classification_matches_budget() {
        let mut rng = HopRng::seeded(9);
        let p = Probes::new(SearchPolicy::TwoPhase { random_hops: 3 }, 6, 2, &mut rng);
        let budget = p.budget();
        let cov = p.coverage_len();
        assert_eq!(cov, 6);
        // The last `cov` probes are coverage, the earlier ones are not.
        for i in 0..budget {
            assert_eq!(p.in_coverage(i), i >= budget - cov, "probe {i}");
        }
    }

    #[test]
    fn random_only_coverage_is_the_trailing_sweep() {
        let mut rng = HopRng::seeded(9);
        let p = Probes::new(SearchPolicy::RandomOnly, 6, 0, &mut rng);
        assert_eq!(p.coverage_len(), 6);
        for i in 0..p.budget() {
            assert_eq!(p.in_coverage(i), i >= p.budget() - 6);
        }
    }

    #[test]
    fn start_index_is_wrapped() {
        let v = collect(SearchPolicy::RoundRobinOnly, 4, 10, 0);
        assert_eq!(v[0], 2);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut rng = HopRng::seeded(3);
        let mut p = Probes::new(SearchPolicy::TwoPhase { random_hops: 1 }, 4, 0, &mut rng);
        let mut remaining = p.budget();
        assert_eq!(p.size_hint(), (remaining, Some(remaining)));
        while p.next().is_some() {
            remaining -= 1;
            assert_eq!(p.size_hint(), (remaining, Some(remaining)));
        }
    }

    #[test]
    fn config_builder_round_trips() {
        let params = Params::new(4, 2, 1).unwrap();
        let cfg = SearchConfig::new(params)
            .search_policy(SearchPolicy::RandomOnly)
            .hop_on_contention(false)
            .locality(false)
            .node_pool(false);
        assert_eq!(cfg.params(), params);
        assert_eq!(cfg.policy(), SearchPolicy::RandomOnly);
        assert!(!cfg.hops_on_contention());
        assert!(!cfg.uses_locality());
        assert!(!cfg.uses_node_pool());
        assert!(SearchConfig::new(params).uses_node_pool(), "pool defaults on");
    }

    #[test]
    fn capacity_defaults_to_width_and_clamps_up() {
        let params = Params::new(4, 2, 1).unwrap();
        assert_eq!(SearchConfig::new(params).capacity(), 4);
        assert_eq!(SearchConfig::new(params).max_width(16).capacity(), 16);
        // Below the initial width the clamp wins.
        assert_eq!(SearchConfig::new(params).max_width(2).capacity(), 4);
    }

    #[test]
    fn config_from_params_uses_paper_defaults() {
        let cfg: SearchConfig = Params::default().into();
        assert_eq!(cfg.policy(), SearchPolicy::TwoPhase { random_hops: 1 });
        assert!(cfg.hops_on_contention());
        assert!(cfg.uses_locality());
    }

    #[test]
    fn two_phase_random_hops_larger_than_width_is_clamped() {
        let v = collect(SearchPolicy::TwoPhase { random_hops: 100 }, 3, 0, 5);
        assert_eq!(v.len(), 1 + 3 + 3);
    }
}
