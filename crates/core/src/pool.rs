//! Per-thread node pools: epoch-recycled storage for hot-path allocations.
//!
//! Every op on a descriptor-swinging structure allocates (a fresh
//! `Descriptor`, and on push a node) and retires the displaced blocks
//! through epoch reclamation. With the default `Box` path that is one
//! `malloc` + one `free` per block per op — measurably the dominant cost of
//! an uncontended push/pop pair (see EXPERIMENTS.md, BENCH_9→10). This
//! module replaces the allocator round-trip with a **layout-keyed
//! thread-local freelist**:
//!
//! * [`alloc`] pops a cached block of the exact layout (falling back to the
//!   global allocator when the shard is empty), and
//! * [`recycle`] — installed as the epoch collector's destroy function via
//!   `Guard::defer_destroy_with` — pushes the retired block back onto the
//!   reclaiming thread's shard instead of freeing it.
//!
//! Invariants that make this sound:
//!
//! * **Every block originates from `Box::into_raw`** (the fallback path),
//!   so a pooled block and a boxed block are interchangeable: either may be
//!   freed with `Box::from_raw`/`dealloc` or cached, in any order, on any
//!   thread. Structure `Drop` impls keep their plain `Box::from_raw` walks.
//! * **Retired blocks are storage-only.** The structures consume the value
//!   (`ptr::read` / `ManuallyDrop::take`) *before* retiring, so `recycle`
//!   never runs drop glue — it only reclaims bytes.
//! * Shards are capped ([`SHARD_CAP`] blocks per layout class,
//!   [`MAX_CLASSES`] classes); overflow falls back to the allocator, so a
//!   producer/consumer imbalance cannot hoard unbounded memory. A thread's
//!   shard is freed when the thread exits ([`FreeList`]'s `Drop`), and
//!   [`recycle`] degrades to a plain `dealloc` during thread teardown when
//!   the thread-local is already gone.
//!
//! The pool is enabled per structure with
//! [`Builder::node_pool`](crate::Builder::node_pool) (default on); a
//! disabled structure routes the same call sites through the plain boxed
//! path, which is how the parity tests compare the two.

use core::alloc::Layout;
use core::cell::Cell;
use core::ptr;

/// Maximum cached blocks per layout class per thread. Enough to absorb the
/// descriptor + node churn of a tight op loop; small enough that a thread
/// parks at most a few KiB per class.
const SHARD_CAP: usize = 128;

/// Maximum distinct layout classes per thread (a process using the stack,
/// the queue and the counter at several item types stays under this; extra
/// layouts simply bypass the cache).
const MAX_CLASSES: usize = 8;

/// One intrusive freelist of blocks sharing an exact [`Layout`]. The link
/// pointer lives in the first word of each free block, which is why only
/// layouts with `size >= 8 && align >= 8` are [`eligible`].
///
/// `key` packs the layout (size word | align in the low byte — alignments
/// are powers of two `<= 2^63`, stored as `trailing_zeros + 1` so the
/// empty-slot key 0 is never a valid layout) into one word, making the
/// class scan a single integer compare per slot.
struct Class {
    key: Cell<usize>,
    head: Cell<*mut u8>,
    len: Cell<usize>,
}

/// A thread's pooled blocks across all layout classes. The class table is
/// a fixed inline array scanned linearly: interior mutability is all
/// `Cell`, so the hot path is free of `RefCell` borrow bookkeeping, and
/// the table lives directly in the TLS block (no heap indirection).
struct FreeList {
    classes: [Class; MAX_CLASSES],
}

// The interior mutability is the point: this is the `const` repeat seed
// for the TLS table's const-initialiser, never a shared constant (each
// thread_local instantiation gets fresh `Cell`s).
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_CLASS: Class =
    Class { key: Cell::new(0), head: Cell::new(ptr::null_mut()), len: Cell::new(0) };

thread_local! {
    static POOL: FreeList = const { FreeList { classes: [EMPTY_CLASS; MAX_CLASSES] } };
}

/// Whether blocks of `layout` can carry the intrusive link pointer.
#[inline]
fn eligible(layout: Layout) -> bool {
    layout.size() >= core::mem::size_of::<*mut u8>()
        && layout.align() >= core::mem::align_of::<*mut u8>()
}

/// The packed class key for `layout` (never 0 for a valid layout: align
/// is at least 1, so the low byte is at least 1).
#[inline]
fn class_key(layout: Layout) -> usize {
    (layout.size() << 8) | (layout.align().trailing_zeros() as usize + 1)
}

impl FreeList {
    #[inline]
    fn pop(&self, key: usize) -> Option<*mut u8> {
        for class in &self.classes {
            if class.key.get() == key {
                let block = class.head.get();
                if block.is_null() {
                    return None;
                }
                // SAFETY: `block` is a live free block of this class; its
                // first word holds the link written by `push`.
                class.head.set(unsafe { *block.cast::<*mut u8>() });
                class.len.set(class.len.get() - 1);
                return Some(block);
            }
            if class.key.get() == 0 {
                return None;
            }
        }
        None
    }

    /// Caches `block`; `false` means the caller must free it instead.
    #[inline]
    fn push(&self, key: usize, block: *mut u8) -> bool {
        let Some(class) = self.classes.iter().find(|c| {
            let k = c.key.get();
            if k == 0 {
                c.key.set(key); // claim the empty slot for this layout
            }
            k == key || k == 0
        }) else {
            return false; // class table full
        };
        if class.len.get() >= SHARD_CAP {
            return false;
        }
        #[cfg(debug_assertions)]
        {
            // Double-recycle detector: the shard is small, walk it.
            let mut cursor = class.head.get();
            while !cursor.is_null() {
                assert!(cursor != block, "block recycled twice into the node pool");
                // SAFETY: every cached block's first word is its link.
                cursor = unsafe { *cursor.cast::<*mut u8>() };
            }
        }
        // SAFETY: `block` is exclusively owned (it was just retired by the
        // epoch collector or rejected by an alloc) and `eligible` proved it
        // can hold the link in its first word.
        unsafe { *block.cast::<*mut u8>() = class.head.get() };
        class.head.set(block);
        class.len.set(class.len.get() + 1);
        true
    }
}

impl Drop for FreeList {
    fn drop(&mut self) {
        for class in &self.classes {
            let key = class.key.get();
            if key == 0 {
                continue;
            }
            let layout = Layout::from_size_align(key >> 8, 1 << ((key & 0xff) - 1))
                .expect("class keys pack layouts that came from Layout::new");
            while !class.head.get().is_null() {
                let block = class.head.get();
                // SAFETY: cached blocks form a valid intrusive list; each
                // came from the global allocator with exactly `layout`.
                unsafe {
                    class.head.set(*block.cast::<*mut u8>());
                    std::alloc::dealloc(block, layout);
                }
            }
        }
    }
}

/// Allocates storage for `value`, preferring the calling thread's pool.
///
/// The returned pointer is always interchangeable with
/// `Box::into_raw(Box::new(value))`: it may later be freed with
/// `Box::from_raw`, retired through plain `defer_destroy`, or recycled.
#[inline]
pub(crate) fn alloc<T>(value: T) -> *mut T {
    let layout = Layout::new::<T>();
    if eligible(layout) {
        let cached = POOL.with(|p| p.pop(class_key(layout)));
        if let Some(block) = cached {
            stats::hit(&stats::REUSED);
            let p = block.cast::<T>();
            // SAFETY: `block` has layout `Layout::new::<T>()` and is
            // exclusively owned; writing initializes it for `T`.
            unsafe { ptr::write(p, value) };
            return p;
        }
    }
    stats::hit(&stats::FRESH);
    boxed(value)
}

/// The plain allocator path (also the pool-miss fallback): every pool
/// block is born here, which is what keeps boxed and pooled blocks
/// interchangeable. Structures built with `.node_pool(false)` route all
/// their allocations through this.
#[inline]
pub(crate) fn boxed<T>(value: T) -> *mut T {
    Box::into_raw(Box::new(value))
}

/// Reclaims a retired block of type `T`, caching it on the calling
/// thread's pool when possible and freeing it otherwise.
///
/// The signature matches the epoch collector's destroy hook
/// (`unsafe fn(*mut ())`), so `recycle::<T>` is passed directly to
/// `Guard::defer_destroy_with`.
///
/// # Safety
///
/// `p` must be a block of layout `Layout::new::<T>()` obtained from
/// [`alloc`]/[`boxed`], retired exactly once, with its `T` value already
/// consumed (no drop glue runs here — this reclaims storage only).
#[inline]
pub(crate) unsafe fn recycle<T>(p: *mut ()) {
    let layout = Layout::new::<T>();
    let block = p.cast::<u8>();
    if eligible(layout) {
        // `try_with`: epoch collection can run inside thread teardown,
        // after this thread-local was destroyed.
        let cached = POOL.try_with(|pool| pool.push(class_key(layout), block)).unwrap_or(false);
        if cached {
            stats::hit(&stats::CACHED);
            return;
        }
    }
    stats::hit(&stats::FREED);
    // SAFETY: the block came from the global allocator (every pool block
    // originates from `Box::into_raw`) with exactly this layout, and the
    // caller's contract gives us exclusive ownership of it.
    unsafe { std::alloc::dealloc(block, layout) };
}

/// Frees a retired block of type `T` without running drop glue — the
/// unpooled counterpart of [`recycle`], usable as the same epoch destroy
/// hook. For blocks whose pointee drop is storage-only (descriptors, nodes
/// with already-consumed `ManuallyDrop` values) this is exactly what
/// `drop(Box::from_raw(p))` would do.
///
/// # Safety
///
/// Same contract as [`recycle`]: `p` must be a block of layout
/// `Layout::new::<T>()` from [`alloc`]/[`boxed`], retired exactly once,
/// with its `T` value already consumed.
pub(crate) unsafe fn free_block<T>(p: *mut ()) {
    // SAFETY: forwarded caller contract — exclusive allocator-owned block
    // of exactly this layout.
    unsafe { std::alloc::dealloc(p.cast::<u8>(), Layout::new::<T>()) };
}

/// Process-wide pool traffic counters (see [`pool_stats`]).
///
/// All fields are **zero in release builds**: the counters are
/// debug-assertions-only so the release hot path carries no shared-counter
/// traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served by the global allocator (pool miss or ineligible
    /// layout).
    pub fresh: u64,
    /// Allocations served from a thread's freelist.
    pub reused: u64,
    /// Retirements cached onto a freelist.
    pub cached: u64,
    /// Retirements returned to the global allocator (shard full, class
    /// table full, ineligible layout, or thread teardown).
    pub freed: u64,
}

/// A snapshot of the process-wide pool traffic counters. Debug builds
/// only; in release builds every field is zero (the hot path is unmetered
/// by design). The churn tests use this to prove recycling actually
/// happens and that accounting balances.
pub fn pool_stats() -> PoolStats {
    stats::snapshot()
}

// Accounting deliberately sits on std::sync::atomic, not the crate::sync
// facade: these counters are debug-only plumbing and must never enter the
// model checker's interleaving vocabulary.
mod stats {
    #[cfg(debug_assertions)]
    use std::sync::atomic::{AtomicU64, Ordering};

    #[cfg(debug_assertions)]
    pub(super) static FRESH: AtomicU64 = AtomicU64::new(0);
    #[cfg(debug_assertions)]
    pub(super) static REUSED: AtomicU64 = AtomicU64::new(0);
    #[cfg(debug_assertions)]
    pub(super) static CACHED: AtomicU64 = AtomicU64::new(0);
    #[cfg(debug_assertions)]
    pub(super) static FREED: AtomicU64 = AtomicU64::new(0);

    #[cfg(debug_assertions)]
    #[inline]
    pub(super) fn hit(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    pub(super) fn hit(_counter: &()) {}

    #[cfg(not(debug_assertions))]
    pub(super) static FRESH: () = ();
    #[cfg(not(debug_assertions))]
    pub(super) static REUSED: () = ();
    #[cfg(not(debug_assertions))]
    pub(super) static CACHED: () = ();
    #[cfg(not(debug_assertions))]
    pub(super) static FREED: () = ();

    pub(super) fn snapshot() -> super::PoolStats {
        #[cfg(debug_assertions)]
        {
            super::PoolStats {
                fresh: FRESH.load(Ordering::Relaxed),
                reused: REUSED.load(Ordering::Relaxed),
                cached: CACHED.load(Ordering::Relaxed),
                freed: FREED.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            super::PoolStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_then_recycle_then_alloc_reuses_the_block() {
        // Use a type with a layout no other test traffic shares, so the
        // round-trip is observable through the returned addresses alone.
        #[repr(align(64))]
        struct Odd(#[allow(dead_code)] [u8; 192]);
        let p = alloc(Odd([7; 192]));
        // SAFETY: fresh exclusive block; value is Copy-free but droppable
        // as plain bytes, consume it by leaking the contents (u8s).
        unsafe { recycle::<Odd>(p.cast()) };
        let q = alloc(Odd([9; 192]));
        assert_eq!(p, q, "recycled block was not reused");
        // SAFETY: q owns the block; free it through the boxed path to
        // exercise interchangeability.
        drop(unsafe { Box::from_raw(q) });
    }

    #[test]
    fn ineligible_layouts_bypass_the_pool() {
        let p = alloc(3u8);
        // SAFETY: exclusive block of layout u8; recycle must dealloc it
        // (too small for the intrusive link), not cache it.
        unsafe { recycle::<u8>(p.cast()) };
        let layout = Layout::new::<u8>();
        assert!(!eligible(layout));
    }

    #[test]
    fn shard_cap_overflows_to_the_allocator() {
        #[repr(align(32))]
        struct Wide(#[allow(dead_code)] [u8; 96]);
        let blocks: Vec<*mut Wide> = (0..SHARD_CAP + 8).map(|_| alloc(Wide([0; 96]))).collect();
        let before = pool_stats();
        for &b in &blocks {
            // SAFETY: each block is exclusively owned and retired once.
            unsafe { recycle::<Wide>(b.cast()) };
        }
        let after = pool_stats();
        if cfg!(debug_assertions) {
            assert!(after.freed > before.freed, "overflow must fall back to dealloc");
            assert!(after.cached >= before.cached + SHARD_CAP as u64 - 8);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "recycled twice")]
    fn double_recycle_is_caught_in_debug() {
        #[repr(align(16))]
        struct Dup(#[allow(dead_code)] [u8; 80]);
        let p = alloc(Dup([0; 80]));
        // SAFETY: first retirement is legitimate; the second is the bug
        // under test and panics before touching freed memory.
        unsafe {
            recycle::<Dup>(p.cast());
            recycle::<Dup>(p.cast());
        }
    }
}
