//! The hot-swappable window descriptor behind online ("elastic") retuning.
//!
//! The paper freezes `width`, `depth` and `shift` at construction; this
//! module makes them *runtime-tunable* so a controller (see the
//! `stack2d-adaptive` crate) can widen the window under contention and
//! tighten it when load drops. The live configuration is a heap-allocated
//! [`WindowDesc`] behind an epoch-protected atomic pointer, exactly like a
//! sub-stack's `(top, count)` descriptor: [`Stack2D::retune`] installs a
//! fresh descriptor with a single-word CAS, operations re-read the pointer
//! at every search round, and displaced descriptors are reclaimed through
//! `crossbeam-epoch`. Pushes and pops therefore never block on a retune.
//!
//! # Width growth and shrink
//!
//! The sub-stack array is allocated once at the stack's **capacity**
//! ([`StackConfig::max_width`](crate::StackConfig::max_width)), so growing
//! `width` is purely a descriptor swing: the new sub-stacks are already
//! there, empty, below the window.
//!
//! Shrinking is two-phase, because items may be resident in the retired
//! tail `[new_width, old_width)`:
//!
//! 1. the shrink descriptor takes effect immediately for **pushes**
//!    (`push_width = new_width`) while **pops** keep draining the old span
//!    (`pop_width = old_width`);
//! 2. the shrink *commits* (`pop_width = push_width`, via
//!    [`Stack2D::try_commit_shrink`]) only once (a) every operation that
//!    predates the shrink has finished — established by retiring a
//!    [`ShrinkFence`] sentinel through epoch reclamation, whose `Drop`
//!    can only run once all pre-shrink pins are gone — and (b) a sweep
//!    observes the tail empty. After (a) no thread can push into the tail
//!    any more, so (b) is a stable property and no item is ever stranded.
//!
//! # The instantaneous relaxation bound
//!
//! [`WindowInfo::k_bound`] is computed with `pop_width` — the number of
//! sub-stacks a pop may actually draw from — so the bound published for a
//! generation is honest while a shrink is pending: it stays at the wide
//! value until the tail is provably drained, and only then tightens. Every
//! descriptor swing increments [`WindowInfo::generation`]; the quality
//! crate checks measured error distances *per generation segment* against
//! the bound in force when the pop happened.
//!
//! [`Stack2D::retune`]: crate::Stack2D::retune
//! [`Stack2D::try_commit_shrink`]: crate::Stack2D::try_commit_shrink

use core::fmt;
use core::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::params::Params;

/// The live window configuration of a [`Stack2D`](crate::Stack2D):
/// heap-allocated, swung atomically by `retune`, reclaimed by epochs.
pub(crate) struct WindowDesc {
    /// Sub-stacks pushes may target: `[0, push_width)`.
    pub(crate) push_width: usize,
    /// Sub-stacks pops may draw from: `[0, pop_width)`; equals
    /// `push_width` except while a width shrink is pending.
    pub(crate) pop_width: usize,
    /// Vertical window dimension (max per-sub-stack slack).
    pub(crate) depth: usize,
    /// `Global` movement per window shift.
    pub(crate) shift: usize,
    /// Monotone counter bumped by every descriptor swing.
    pub(crate) generation: u64,
    /// Present while a shrink is pending: flips to `true` once every
    /// operation that predates the shrink has finished (see
    /// [`ShrinkFence`]).
    pub(crate) fence: Option<Arc<AtomicBool>>,
}

impl WindowDesc {
    /// The initial (generation 0) descriptor for `params`.
    pub(crate) fn initial(params: Params) -> Self {
        WindowDesc {
            push_width: params.width(),
            pop_width: params.width(),
            depth: params.depth(),
            shift: params.shift(),
            generation: 0,
            fence: None,
        }
    }

    /// Public snapshot of this descriptor.
    pub(crate) fn info(&self) -> WindowInfo {
        WindowInfo {
            params: Params::new(self.push_width, self.depth, self.shift)
                .expect("window descriptor always holds validated parameters"),
            pop_width: self.pop_width,
            generation: self.generation,
        }
    }
}

/// Sentinel retired through epoch-based reclamation when a shrink
/// descriptor is installed.
///
/// Epoch reclamation frees an object only after every thread pinned at
/// retirement time has unpinned, i.e. after every operation that could
/// still be using the *pre-shrink* descriptor (and therefore pushing into
/// the retired tail) has finished. Running this sentinel's `Drop` is that
/// proof; it flips the flag the shrink commit waits on.
pub(crate) struct ShrinkFence(pub(crate) Arc<AtomicBool>);

impl Drop for ShrinkFence {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// A consistent snapshot of the live window of a
/// [`Stack2D`](crate::Stack2D) — parameters, pop span and generation.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Stack2D};
///
/// let stack: Stack2D<u32> = Stack2D::elastic(Params::new(2, 1, 1).unwrap(), 8);
/// let w = stack.window();
/// assert_eq!(w.width(), 2);
/// assert_eq!(w.generation(), 0);
///
/// stack.retune(Params::new(8, 1, 1).unwrap()).unwrap();
/// let w = stack.window();
/// assert_eq!(w.width(), 8);
/// assert_eq!(w.generation(), 1);
/// assert_eq!(w.k_bound(), (2 + 1) * 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    params: Params,
    pop_width: usize,
    generation: u64,
}

impl WindowInfo {
    /// The push-side window parameters currently in force.
    #[inline]
    pub fn params(&self) -> Params {
        self.params
    }

    /// Sub-stacks pushes target (the tuned `width`).
    #[inline]
    pub fn width(&self) -> usize {
        self.params.width()
    }

    /// Sub-stacks pops draw from; exceeds [`WindowInfo::width`] while a
    /// width shrink is pending commit.
    #[inline]
    pub fn pop_width(&self) -> usize {
        self.pop_width
    }

    /// Window depth currently in force.
    #[inline]
    pub fn depth(&self) -> usize {
        self.params.depth()
    }

    /// Window shift currently in force.
    #[inline]
    pub fn shift(&self) -> usize {
        self.params.shift()
    }

    /// Descriptor generation: bumped by every retune and shrink commit.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a width shrink is pending (pops still cover the old span).
    #[inline]
    pub fn pending_shrink(&self) -> bool {
        self.pop_width > self.params.width()
    }

    /// The instantaneous k-out-of-order bound, computed over
    /// [`WindowInfo::pop_width`] — the span pops may actually draw from —
    /// so it stays honest while a shrink is pending.
    pub fn k_bound(&self) -> usize {
        Params::new(self.pop_width, self.params.depth(), self.params.shift())
            .expect("pop_width >= 1 and depth/shift come from validated parameters")
            .k_bound()
    }
}

impl fmt::Display for WindowInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen={} width={} depth={} shift={} pop-width={} (k={})",
            self.generation,
            self.params.width(),
            self.params.depth(),
            self.params.shift(),
            self.pop_width,
            self.k_bound()
        )
    }
}

/// Error returned by [`Stack2D::retune`](crate::Stack2D::retune).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetuneError {
    /// The requested width exceeds the sub-stack array allocated at
    /// construction ([`StackConfig::max_width`](crate::StackConfig::max_width)).
    ExceedsCapacity {
        /// The requested width.
        requested: usize,
        /// The stack's fixed capacity.
        capacity: usize,
    },
}

impl fmt::Display for RetuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RetuneError::ExceedsCapacity { requested, capacity } => {
                write!(f, "requested width {requested} exceeds stack capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for RetuneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_descriptor_mirrors_params() {
        let p = Params::new(4, 2, 1).unwrap();
        let d = WindowDesc::initial(p);
        assert_eq!(d.push_width, 4);
        assert_eq!(d.pop_width, 4);
        assert_eq!(d.generation, 0);
        assert!(d.fence.is_none());
        let info = d.info();
        assert_eq!(info.params(), p);
        assert!(!info.pending_shrink());
        assert_eq!(info.k_bound(), p.k_bound());
    }

    #[test]
    fn pending_shrink_bound_uses_pop_width() {
        let d = WindowDesc {
            push_width: 2,
            pop_width: 8,
            depth: 1,
            shift: 1,
            generation: 3,
            fence: Some(Arc::new(AtomicBool::new(false))),
        };
        let info = d.info();
        assert!(info.pending_shrink());
        assert_eq!(info.width(), 2);
        assert_eq!(info.pop_width(), 8);
        // Bound is computed over the 8 sub-stacks pops still cover.
        assert_eq!(info.k_bound(), Params::new(8, 1, 1).unwrap().k_bound());
    }

    #[test]
    fn shrink_fence_flips_flag_on_drop() {
        let flag = Arc::new(AtomicBool::new(false));
        let fence = ShrinkFence(Arc::clone(&flag));
        assert!(!flag.load(Ordering::Acquire));
        drop(fence);
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn retune_error_display_is_informative() {
        let e = RetuneError::ExceedsCapacity { requested: 9, capacity: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn window_info_display_mentions_generation_and_k() {
        let info = WindowDesc::initial(Params::new(4, 2, 1).unwrap()).info();
        let s = info.to_string();
        assert!(s.contains("gen=0"));
        assert!(s.contains("width=4"));
        assert!(s.contains("k="));
    }
}
