//! The hot-swappable window descriptor behind online ("elastic") retuning —
//! structure-agnostic since PR 3.
//!
//! The paper freezes `width`, `depth` and `shift` at construction; this
//! module makes them *runtime-tunable* so a controller (see the
//! `stack2d-adaptive` crate) can widen the window under contention and
//! tighten it when load drops. The live configuration is a heap-allocated
//! `WindowDesc` behind an epoch-protected atomic pointer, exactly like a
//! sub-stack's `(top, count)` descriptor: a retune installs a fresh
//! descriptor with a single-word CAS, operations re-read the pointer at
//! every search round, and displaced descriptors are reclaimed through
//! `crossbeam-epoch`. Operations therefore never block on a retune.
//!
//! Nothing in the descriptor machinery is stack-specific, so it lives in
//! `ElasticWindow`, shared by all three windowed structures:
//! [`Stack2D`](crate::Stack2D) holds one, [`Queue2D`](crate::Queue2D)
//! holds two (one per window — put and get; see DESIGN.md §7), and
//! [`Counter2D`](crate::Counter2D) holds one.
//!
//! # Width growth and shrink
//!
//! The sub-structure array is allocated once at the structure's
//! **capacity** (e.g. [`SearchConfig::max_width`](crate::SearchConfig::max_width)),
//! so growing `width` is purely a descriptor swing: the new sub-structures
//! are already there, empty, below the window.
//!
//! Shrinking is two-phase, because items may be resident in the retired
//! tail `[new_width, old_width)`:
//!
//! 1. the shrink descriptor takes effect immediately for the **producing**
//!    side (`push_width = new_width`) while the **consuming** side keeps
//!    draining the old span (`pop_width = old_width`);
//! 2. the shrink *commits* (`pop_width = push_width`, via
//!    `ElasticWindow::try_commit_shrink`) only once (a) every operation
//!    that predates the shrink has finished — established by retiring a
//!    `ShrinkFence` sentinel through epoch reclamation, whose `Drop`
//!    can only run once all pre-shrink pins are gone — and (b) the
//!    structure's `tail_clear` sweep observes the tail empty (or, for the
//!    counter, folds the retired values away). After (a) no thread can
//!    produce into the tail any more, so (b) is a stable property and no
//!    item is ever stranded.
//!
//! # The instantaneous relaxation bound
//!
//! [`WindowInfo::k_bound`] is computed with `pop_width` — the span the
//! consuming side may actually draw from — so the bound published for a
//! generation is honest while a shrink is pending: it stays at the wide
//! value until the tail is provably drained, and only then tightens. Every
//! descriptor swing increments [`WindowInfo::generation`]; the quality
//! crate checks measured error distances *per generation segment* against
//! the bound in force when the operation happened.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;
use core::fmt;
use core::ops::Range;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned};
use crossbeam_utils::CachePadded;

use crate::params::Params;

/// The live window configuration of a windowed structure:
/// heap-allocated, swung atomically by `retune`, reclaimed by epochs.
pub(crate) struct WindowDesc {
    /// Sub-structures the producing side may target: `[0, push_width)`.
    pub(crate) push_width: usize,
    /// Sub-structures the consuming side may draw from: `[0, pop_width)`;
    /// equals `push_width` except while a width shrink is pending.
    pub(crate) pop_width: usize,
    /// Vertical window dimension (max per-sub-stack slack).
    pub(crate) depth: usize,
    /// `Global` movement per window shift.
    pub(crate) shift: usize,
    /// Monotone counter bumped by every descriptor swing.
    pub(crate) generation: u64,
    /// Present while a shrink is pending: flips to `true` once every
    /// operation that predates the shrink has finished (see
    /// [`ShrinkFence`]).
    pub(crate) fence: Option<Arc<AtomicBool>>,
}

impl WindowDesc {
    /// The initial (generation 0) descriptor for `params`.
    pub(crate) fn initial(params: Params) -> Self {
        WindowDesc {
            push_width: params.width(),
            pop_width: params.width(),
            depth: params.depth(),
            shift: params.shift(),
            generation: 0,
            fence: None,
        }
    }

    /// Public snapshot of this descriptor.
    pub(crate) fn info(&self) -> WindowInfo {
        WindowInfo {
            params: Params::new(self.push_width, self.depth, self.shift)
                // archlint: allow(no-panic-in-hot-path) — descriptors are
                // only built from validated Params; failure is a core bug.
                .expect("window descriptor always holds validated parameters"),
            pop_width: self.pop_width,
            generation: self.generation,
        }
    }
}

/// Sentinel retired through epoch-based reclamation when a shrink
/// descriptor is installed.
///
/// Epoch reclamation frees an object only after every thread pinned at
/// retirement time has unpinned, i.e. after every operation that could
/// still be using the *pre-shrink* descriptor (and therefore pushing into
/// the retired tail) has finished. Running this sentinel's `Drop` is that
/// proof; it flips the flag the shrink commit waits on.
pub(crate) struct ShrinkFence(pub(crate) Arc<AtomicBool>);

impl Drop for ShrinkFence {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// The structure-agnostic elastic machinery: an epoch-protected,
/// hot-swappable [`WindowDesc`] plus the retune / two-phase-shrink
/// protocol built in PR 2 for [`Stack2D`](crate::Stack2D) and since
/// shared with [`Queue2D`](crate::Queue2D) and
/// [`Counter2D`](crate::Counter2D).
///
/// The owning structure supplies only what is structure-specific: its
/// capacity (the ceiling for widths) and, at shrink commit, the
/// `tail_clear` sweep proving the retired span holds no items.
pub(crate) struct ElasticWindow {
    desc: CachePadded<Atomic<WindowDesc>>,
}

impl ElasticWindow {
    /// A window starting at `params` (generation 0).
    pub(crate) fn new(params: Params) -> Self {
        ElasticWindow { desc: CachePadded::new(Atomic::new(WindowDesc::initial(params))) }
    }

    /// The live descriptor, valid for the lifetime of `guard`. Never null:
    /// construction installs a descriptor and every swing replaces it with
    /// another.
    #[inline]
    pub(crate) fn load<'g>(&self, guard: &'g Guard) -> &'g WindowDesc {
        // SAFETY: the descriptor is never null (see the doc comment) and the
        // epoch guard keeps the loaded descriptor alive for `'g`.
        unsafe { self.desc.load(Ordering::Acquire, guard).deref() }
    }

    /// A consistent public snapshot of the live descriptor.
    pub(crate) fn info(&self) -> WindowInfo {
        let guard = epoch::pin();
        self.load(&guard).info()
    }

    /// Installs new window parameters with a single descriptor CAS,
    /// applying the high-water rule: the consuming span never narrows
    /// below sub-structures that may still hold items, and a pending
    /// shrink arms a fresh [`ShrinkFence`]. Returns the snapshot that took
    /// effect plus whether the descriptor actually swung (`false` for a
    /// no-op retune, which bumps no generation).
    pub(crate) fn retune(
        &self,
        params: Params,
        capacity: usize,
    ) -> Result<(WindowInfo, bool), RetuneError> {
        self.retune_inner(params, capacity, true)
    }

    /// Like [`ElasticWindow::retune`], but the consuming span follows the
    /// producing span immediately and no fence is armed — for windows with
    /// no consuming side to cover (a queue's put window, where the
    /// sub-queues retired from *enqueues* are the get window's problem).
    pub(crate) fn retune_symmetric(
        &self,
        params: Params,
        capacity: usize,
    ) -> Result<(WindowInfo, bool), RetuneError> {
        self.retune_inner(params, capacity, false)
    }

    fn retune_inner(
        &self,
        params: Params,
        capacity: usize,
        high_water: bool,
    ) -> Result<(WindowInfo, bool), RetuneError> {
        if params.width() > capacity {
            return Err(RetuneError::ExceedsCapacity { requested: params.width(), capacity });
        }
        let guard = epoch::pin();
        loop {
            let cur_shared = self.desc.load(Ordering::Acquire, &guard);
            // SAFETY: never null, alive under `guard` (see `load`).
            let cur = unsafe { cur_shared.deref() };
            let push_width = params.width();
            // High-water rule: the consuming side must keep covering every
            // sub-structure that may still hold items.
            let pop_width = if high_water { push_width.max(cur.pop_width) } else { push_width };
            if push_width == cur.push_width
                && pop_width == cur.pop_width
                && params.depth() == cur.depth
                && params.shift() == cur.shift
            {
                // No-op retune: report the standing window, no generation
                // bump (keeps the per-generation quality segments dense).
                return Ok((cur.info(), false));
            }
            let fence = if pop_width > push_width {
                // A (possibly further) shrink is pending: arm a fresh fence
                // covering every operation that predates *this* swing.
                Some(Arc::new(AtomicBool::new(false)))
            } else {
                None
            };
            let next = Owned::new(WindowDesc {
                push_width,
                pop_width,
                depth: params.depth(),
                shift: params.shift(),
                generation: cur.generation + 1,
                fence: fence.clone(),
            });
            match self.desc.compare_exchange(
                cur_shared,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(installed) => {
                    // SAFETY: our CAS unlinked the old descriptor; only the
                    // winner retires it, exactly once.
                    unsafe { guard.defer_destroy(cur_shared) };
                    if let Some(flag) = fence {
                        // The sentinel's Drop runs only after every thread
                        // pinned right now — i.e. every operation that may
                        // still produce under the pre-shrink descriptor —
                        // has unpinned. That is the commit precondition.
                        let sentinel = Owned::new(ShrinkFence(flag)).into_shared(&guard);
                        // SAFETY: the sentinel was allocated just above and
                        // never published anywhere else, so this is its only
                        // retirement.
                        unsafe { guard.defer_destroy(sentinel) };
                    }
                    // SAFETY: `installed` is the descriptor we just created;
                    // it stays alive under `guard`.
                    return Ok((unsafe { installed.deref() }.info(), true));
                }
                // Lost to a concurrent retune; re-read and retry. The
                // rejected descriptor rides back in the error and is freed.
                Err(_) => continue,
            }
        }
    }

    /// Attempts to commit a pending width shrink: once the epoch fence
    /// proves every pre-shrink operation finished *and* `tail_clear`
    /// vouches for the retired span `[push_width, pop_width)` — by
    /// observing it empty, or by folding its residue away — the consuming
    /// side stops covering the tail and the relaxation bound tightens.
    ///
    /// Returns the new snapshot when the commit lands, `None` when there
    /// is nothing to commit or the preconditions do not hold yet (call
    /// again later; each call also nudges epoch reclamation along).
    pub(crate) fn try_commit_shrink(
        &self,
        tail_clear: impl FnOnce(Range<usize>, &Guard) -> bool,
    ) -> Option<WindowInfo> {
        let guard = epoch::pin();
        let cur_shared = self.desc.load(Ordering::Acquire, &guard);
        // SAFETY: never null, alive under `guard` (see `load`).
        let cur = unsafe { cur_shared.deref() };
        let flag = cur.fence.as_ref()?;
        if !flag.load(Ordering::Acquire) {
            // Pre-shrink operations may still be in flight; help the epoch
            // along so the fence can trip.
            guard.flush();
            return None;
        }
        // No thread can produce into the tail any more; tail emptiness is
        // a stable property for the sweep to establish.
        if !tail_clear(cur.push_width..cur.pop_width, &guard) {
            return None;
        }
        let next = Owned::new(WindowDesc {
            push_width: cur.push_width,
            pop_width: cur.push_width,
            depth: cur.depth,
            shift: cur.shift,
            generation: cur.generation + 1,
            fence: None,
        });
        match self.desc.compare_exchange(
            cur_shared,
            next,
            Ordering::AcqRel,
            Ordering::Acquire,
            &guard,
        ) {
            Ok(installed) => {
                // SAFETY: our CAS unlinked the old descriptor; only the
                // winner retires it, exactly once.
                unsafe { guard.defer_destroy(cur_shared) };
                // SAFETY: `installed` is the descriptor we just created; it
                // stays alive under `guard`.
                Some(unsafe { installed.deref() }.info())
            }
            // A concurrent retune replaced the descriptor; its own fence
            // (if any) governs the next commit attempt.
            Err(_) => None,
        }
    }
}

impl fmt::Debug for ElasticWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ElasticWindow").field("info", &self.info()).finish()
    }
}

impl Drop for ElasticWindow {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access, satisfying the
        // unprotected guard's contract; the live descriptor is freed
        // directly (retired ones are handled by epoch reclamation).
        unsafe {
            let guard = epoch::unprotected();
            let d = self.desc.load(Ordering::Relaxed, guard);
            drop(d.into_owned());
        }
    }
}

/// A consistent snapshot of a live window — parameters, pop span and
/// generation — of any windowed structure ([`Stack2D`](crate::Stack2D),
/// [`Queue2D`](crate::Queue2D), [`Counter2D`](crate::Counter2D)).
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Stack2D};
///
/// let stack: Stack2D<u32> = Stack2D::builder().params(Params::new(2, 1, 1).unwrap()).elastic_capacity(8).build().unwrap();
/// let w = stack.window();
/// assert_eq!(w.width(), 2);
/// assert_eq!(w.generation(), 0);
///
/// stack.retune(Params::new(8, 1, 1).unwrap()).unwrap();
/// let w = stack.window();
/// assert_eq!(w.width(), 8);
/// assert_eq!(w.generation(), 1);
/// assert_eq!(w.k_bound(), (2 + 1) * 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    params: Params,
    pop_width: usize,
    generation: u64,
}

impl WindowInfo {
    /// The push-side window parameters currently in force.
    #[inline]
    pub fn params(&self) -> Params {
        self.params
    }

    /// Sub-structures the producing side targets (the tuned `width`).
    #[inline]
    pub fn width(&self) -> usize {
        self.params.width()
    }

    /// Sub-structures the consuming side draws from; exceeds
    /// [`WindowInfo::width`] while a width shrink is pending commit.
    #[inline]
    pub fn pop_width(&self) -> usize {
        self.pop_width
    }

    /// Window depth currently in force.
    #[inline]
    pub fn depth(&self) -> usize {
        self.params.depth()
    }

    /// Window shift currently in force.
    #[inline]
    pub fn shift(&self) -> usize {
        self.params.shift()
    }

    /// Descriptor generation: bumped by every retune and shrink commit.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a width shrink is pending (pops still cover the old span).
    #[inline]
    pub fn pending_shrink(&self) -> bool {
        self.pop_width > self.params.width()
    }

    /// The instantaneous k-out-of-order bound, computed over
    /// [`WindowInfo::pop_width`] — the span pops may actually draw from —
    /// so it stays honest while a shrink is pending.
    pub fn k_bound(&self) -> usize {
        Params::new(self.pop_width, self.params.depth(), self.params.shift())
            // archlint: allow(no-panic-in-hot-path) — pop_width shrinks only
            // toward validated widths; failure is a core bug, not input.
            .expect("pop_width >= 1 and depth/shift come from validated parameters")
            .k_bound()
    }
}

impl fmt::Display for WindowInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen={} width={} depth={} shift={} pop-width={} (k={})",
            self.generation,
            self.params.width(),
            self.params.depth(),
            self.params.shift(),
            self.pop_width,
            self.k_bound()
        )
    }
}

/// Error returned by a `retune` ([`Stack2D::retune`](crate::Stack2D::retune),
/// [`Queue2D::retune`](crate::Queue2D::retune),
/// [`Counter2D::retune`](crate::Counter2D::retune)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetuneError {
    /// The requested width exceeds the sub-structure array allocated at
    /// construction (e.g.
    /// [`SearchConfig::max_width`](crate::SearchConfig::max_width)).
    ExceedsCapacity {
        /// The requested width.
        requested: usize,
        /// The structure's fixed capacity.
        capacity: usize,
    },
}

impl fmt::Display for RetuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RetuneError::ExceedsCapacity { requested, capacity } => {
                write!(f, "requested width {requested} exceeds structure capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for RetuneError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_descriptor_mirrors_params() {
        let p = Params::new(4, 2, 1).unwrap();
        let d = WindowDesc::initial(p);
        assert_eq!(d.push_width, 4);
        assert_eq!(d.pop_width, 4);
        assert_eq!(d.generation, 0);
        assert!(d.fence.is_none());
        let info = d.info();
        assert_eq!(info.params(), p);
        assert!(!info.pending_shrink());
        assert_eq!(info.k_bound(), p.k_bound());
    }

    #[test]
    fn pending_shrink_bound_uses_pop_width() {
        let d = WindowDesc {
            push_width: 2,
            pop_width: 8,
            depth: 1,
            shift: 1,
            generation: 3,
            fence: Some(Arc::new(AtomicBool::new(false))),
        };
        let info = d.info();
        assert!(info.pending_shrink());
        assert_eq!(info.width(), 2);
        assert_eq!(info.pop_width(), 8);
        // Bound is computed over the 8 sub-stacks pops still cover.
        assert_eq!(info.k_bound(), Params::new(8, 1, 1).unwrap().k_bound());
    }

    #[test]
    fn shrink_fence_flips_flag_on_drop() {
        let flag = Arc::new(AtomicBool::new(false));
        let fence = ShrinkFence(Arc::clone(&flag));
        assert!(!flag.load(Ordering::Acquire));
        drop(fence);
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn retune_error_display_is_informative() {
        let e = RetuneError::ExceedsCapacity { requested: 9, capacity: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn window_info_display_mentions_generation_and_k() {
        let info = WindowDesc::initial(Params::new(4, 2, 1).unwrap()).info();
        let s = info.to_string();
        assert!(s.contains("gen=0"));
        assert!(s.contains("width=4"));
        assert!(s.contains("k="));
    }

    #[test]
    fn elastic_window_retune_applies_high_water_rule() {
        let w = ElasticWindow::new(Params::new(8, 1, 1).unwrap());
        let (info, swung) = w.retune(Params::new(2, 1, 1).unwrap(), 8).unwrap();
        assert!(swung);
        assert_eq!(info.width(), 2);
        assert_eq!(info.pop_width(), 8, "consuming span holds the high-water mark");
        assert!(info.pending_shrink());
        // A further grow within the pending span keeps the mark.
        let (info, _) = w.retune(Params::new(4, 1, 1).unwrap(), 8).unwrap();
        assert_eq!(info.pop_width(), 8);
    }

    #[test]
    fn elastic_window_symmetric_retune_closes_immediately() {
        let w = ElasticWindow::new(Params::new(8, 1, 1).unwrap());
        let (info, swung) = w.retune_symmetric(Params::new(2, 1, 1).unwrap(), 8).unwrap();
        assert!(swung);
        assert_eq!(info.width(), 2);
        assert_eq!(info.pop_width(), 2, "symmetric retune carries no pending span");
        assert!(!info.pending_shrink());
    }

    #[test]
    fn elastic_window_noop_retune_does_not_swing() {
        let w = ElasticWindow::new(Params::new(4, 2, 1).unwrap());
        let (info, swung) = w.retune(Params::new(4, 2, 1).unwrap(), 8).unwrap();
        assert!(!swung);
        assert_eq!(info.generation(), 0);
    }

    #[test]
    fn elastic_window_rejects_width_beyond_capacity() {
        let w = ElasticWindow::new(Params::new(2, 1, 1).unwrap());
        assert_eq!(
            w.retune(Params::new(5, 1, 1).unwrap(), 4).unwrap_err(),
            RetuneError::ExceedsCapacity { requested: 5, capacity: 4 }
        );
    }

    #[test]
    fn elastic_window_commit_consults_tail_clear() {
        let w = ElasticWindow::new(Params::new(4, 1, 1).unwrap());
        w.retune(Params::new(1, 1, 1).unwrap(), 4).unwrap();
        // Drive the fence; once it trips, a refusing sweep blocks commit.
        let mut asked = None;
        for _ in 0..64 {
            assert!(w
                .try_commit_shrink(|range, _| {
                    asked = Some(range.clone());
                    false
                })
                .is_none());
        }
        assert_eq!(asked, Some(1..4), "sweep must cover the retired tail");
        let info = (0..64)
            .find_map(|_| w.try_commit_shrink(|_, _| true))
            .expect("agreeing sweep must let the shrink commit");
        assert_eq!(info.pop_width(), 1);
        assert!(!info.pending_shrink());
    }
}
