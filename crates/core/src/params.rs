//! Tuning parameters of the 2D window: `width`, `depth` and `shift`.
//!
//! The paper (§3) defines an *operational region* — the **window** — by two
//! parameters: `width` is the number of sub-stacks and `depth` is the maximum
//! number of items a single sub-stack may gain or lose within one window.
//! A third parameter, `shift`, is the amount by which the shared `Global`
//! counter moves when a thread finds no valid sub-stack; the paper requires
//! `shift <= depth`.
//!
//! Theorem 1 of the paper bounds the relaxation: the 2D-Stack is linearizable
//! with respect to k-out-of-order stack semantics with
//!
//! ```text
//! k = (2 * shift + depth) * (width - 1)
//! ```
//!
//! [`Params::k_bound`] computes exactly this quantity, and the quality
//! checker in `stack2d-quality` verifies it empirically.

use core::fmt;

/// Validated tuning parameters for a [`Stack2D`](crate::Stack2D).
///
/// Construct with [`Params::new`] (validating) or through the presets
/// [`Params::for_threads`] and [`Params::for_k`].
///
/// # Examples
///
/// ```
/// use stack2d::Params;
///
/// # fn main() -> Result<(), stack2d::ParamsError> {
/// let p = Params::new(8, 4, 2)?;
/// assert_eq!(p.width(), 8);
/// assert_eq!(p.k_bound(), (2 * 2 + 4) * (8 - 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    width: usize,
    depth: usize,
    shift: usize,
}

/// Error returned when [`Params::new`] is given an invalid combination.
///
/// The constraints come straight from the paper: at least one sub-stack,
/// a window of depth at least one, and `1 <= shift <= depth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamsError {
    /// `width` was zero; the stack needs at least one sub-stack.
    ZeroWidth,
    /// `depth` was zero; the window must admit at least one item.
    ZeroDepth,
    /// `shift` was zero; a `Global` update must make progress.
    ZeroShift,
    /// `shift` exceeded `depth`, violating the paper's `shift <= depth`.
    ShiftExceedsDepth {
        /// The offending shift.
        shift: usize,
        /// The depth it had to stay within.
        depth: usize,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParamsError::ZeroWidth => write!(f, "width must be at least 1"),
            ParamsError::ZeroDepth => write!(f, "depth must be at least 1"),
            ParamsError::ZeroShift => write!(f, "shift must be at least 1"),
            ParamsError::ShiftExceedsDepth { shift, depth } => {
                write!(f, "shift ({shift}) must not exceed depth ({depth})")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

impl Params {
    /// Creates a validated parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] if `width == 0`, `depth == 0`, `shift == 0`
    /// or `shift > depth`.
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::{Params, ParamsError};
    ///
    /// assert!(Params::new(4, 2, 1).is_ok());
    /// assert_eq!(Params::new(4, 2, 3).unwrap_err(),
    ///            ParamsError::ShiftExceedsDepth { shift: 3, depth: 2 });
    /// ```
    pub fn new(width: usize, depth: usize, shift: usize) -> Result<Self, ParamsError> {
        if width == 0 {
            return Err(ParamsError::ZeroWidth);
        }
        if depth == 0 {
            return Err(ParamsError::ZeroDepth);
        }
        if shift == 0 {
            return Err(ParamsError::ZeroShift);
        }
        if shift > depth {
            return Err(ParamsError::ShiftExceedsDepth { shift, depth });
        }
        Ok(Params { width, depth, shift })
    }

    /// The paper's optimal high-throughput configuration for `threads`
    /// concurrent threads: `width = 4 * threads` (§4, "we select 4P as the
    /// optimal performance configuration"), with the tightest window
    /// (`depth = shift = 1`).
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::Params;
    ///
    /// let p = Params::for_threads(8);
    /// assert_eq!(p.width(), 32);
    /// assert_eq!(p.depth(), 1);
    /// ```
    pub fn for_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        Params { width: 4 * threads, depth: 1, shift: 1 }
    }

    /// Derives parameters targeting a relaxation bound of *at most* `k`
    /// for `threads` threads, following the paper's two-dimensional tuning
    /// strategy (§4):
    ///
    /// 1. grow **horizontally** (more sub-stacks, `depth = shift = 1`) while
    ///    `width <= 4 * threads`, because disjoint access parallelism is the
    ///    cheaper dimension for quality;
    /// 2. once `width` saturates at `4 * threads`, grow **vertically**
    ///    (larger `depth`, with `shift = depth`), trading locality for the
    ///    remaining relaxation budget.
    ///
    /// With `shift = depth = d` the bound is `k = 3d(width-1)`, which is what
    /// this preset inverts. `k = 0` yields the strict single-sub-stack
    /// configuration (a plain Treiber stack).
    ///
    /// The returned parameters always satisfy `Params::k_bound() <= k`
    /// (except for `k = 0`, where the bound is exactly 0).
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::Params;
    ///
    /// // Small k: horizontal growth only.
    /// let p = Params::for_k(30, 8);
    /// assert!(p.k_bound() <= 30);
    /// assert_eq!(p.depth(), 1);
    ///
    /// // Large k: width saturates at 4P = 32, depth takes over.
    /// let p = Params::for_k(10_000, 8);
    /// assert_eq!(p.width(), 32);
    /// assert!(p.depth() > 1);
    /// assert!(p.k_bound() <= 10_000);
    /// ```
    pub fn for_k(k: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let max_width = 4 * threads;
        if k == 0 {
            // Strict stack: one sub-stack, degenerate window.
            return Params { width: 1, depth: 1, shift: 1 };
        }
        // Horizontal phase: depth = shift = 1 gives k = 3 (width - 1).
        let width_for_k = k / 3 + 1;
        if width_for_k <= max_width {
            let width = width_for_k.max(1);
            return Params { width, depth: 1, shift: 1 };
        }
        // Vertical phase: width = 4P, shift = depth = d, k = 3 d (width - 1).
        let width = max_width;
        let d = (k / (3 * (width - 1))).max(1);
        Params { width, depth: d, shift: d }
    }

    /// Number of sub-stacks (the *horizontal* dimension).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum per-sub-stack item slack within one window (the *vertical*
    /// dimension).
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Amount the `Global` counter moves per window shift; `1 <= shift <=
    /// depth`.
    #[inline]
    pub fn shift(&self) -> usize {
        self.shift
    }

    /// The k-out-of-order relaxation bound of the paper's Theorem 1:
    /// `k = (2 * shift + depth) * (width - 1)`.
    ///
    /// **Reproduction finding:** this formula does *not* hold for the
    /// algorithm as stated in the brief announcement when
    /// `shift < (depth - 1) / 2`. An item pushed at height `h` while a
    /// sibling sub-stack is shallow can later see that sibling completely
    /// refreshed with newer items as the window climbs, giving up to
    /// `2*depth - 1` newer items per sibling — more than the
    /// `2*shift + depth` the formula budgets (a deterministic 19-operation
    /// counterexample lives in `tests/theorem1_finding.rs`). Use
    /// [`Params::k_bound_sequential`] for the bound this implementation
    /// provably satisfies, and [`Params::k_bound`] (their maximum) for the
    /// bound the crate guarantees and tests enforce. For `depth = 1` —
    /// including the paper's high-throughput `4P` preset — the published
    /// formula is safe (and in fact conservative).
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::Params;
    ///
    /// # fn main() -> Result<(), stack2d::ParamsError> {
    /// assert_eq!(Params::new(1, 5, 5)?.k_bound_paper(), 0);
    /// assert_eq!(Params::new(4, 2, 1)?.k_bound_paper(), (2 + 2) * 3);
    /// # Ok(())
    /// # }
    /// ```
    #[inline]
    pub fn k_bound_paper(&self) -> usize {
        (2 * self.shift + self.depth) * (self.width - 1)
    }

    /// The sequential relaxation bound this implementation satisfies:
    /// `k = (2 * depth - 1) * (width - 1)`.
    ///
    /// Derivation sketch (see DESIGN.md for the full argument): when an
    /// item at height `h` is popped, pop validity forces
    /// `Global < h + depth`, so every sibling sub-stack holds at most
    /// `h + depth - 1` items; and because lowering `Global` past
    /// `h + depth` is blocked while the item is resident, each sibling
    /// retains at least `h - depth` items that predate the popped item.
    /// The newer items per sibling are therefore at most `2*depth - 1`.
    /// The property tests in `tests/theorem1.rs` verify this bound over
    /// arbitrary parameters and workloads.
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::Params;
    ///
    /// # fn main() -> Result<(), stack2d::ParamsError> {
    /// assert_eq!(Params::new(7, 4, 1)?.k_bound_sequential(), 7 * 6);
    /// # Ok(())
    /// # }
    /// ```
    #[inline]
    pub fn k_bound_sequential(&self) -> usize {
        (2 * self.depth - 1) * (self.width - 1)
    }

    /// The deterministic k-out-of-order bound this crate guarantees: the
    /// maximum of the paper's Theorem 1 formula ([`Params::k_bound_paper`])
    /// and the implementation's sequential bound
    /// ([`Params::k_bound_sequential`]).
    ///
    /// A pop returns an item at most `k` positions below the top of the
    /// corresponding strict (linearized) stack; a width-1 configuration is
    /// a strict stack (`k = 0`). For `shift = depth` and for `depth = 1`
    /// (all presets produced by [`Params::for_k`] / [`Params::for_threads`])
    /// this equals the paper's formula.
    ///
    /// # Examples
    ///
    /// ```
    /// use stack2d::Params;
    ///
    /// # fn main() -> Result<(), stack2d::ParamsError> {
    /// assert_eq!(Params::new(1, 5, 5)?.k_bound(), 0);
    /// // shift = depth: paper formula dominates.
    /// assert_eq!(Params::new(4, 2, 2)?.k_bound(), (4 + 2) * 3);
    /// // shift << depth: the implementation bound dominates.
    /// assert_eq!(Params::new(7, 4, 1)?.k_bound(), 7 * 6);
    /// # Ok(())
    /// # }
    /// ```
    #[inline]
    pub fn k_bound(&self) -> usize {
        self.k_bound_paper().max(self.k_bound_sequential())
    }

    /// Initial value of the `Global` counter.
    ///
    /// `Global` is the *upper* edge of the window; starting it at `depth`
    /// makes the initial window `[0, depth]`, so pushes are valid on empty
    /// sub-stacks and pops correctly observe emptiness.
    #[inline]
    pub(crate) fn initial_global(&self) -> usize {
        self.depth
    }
}

impl Default for Params {
    /// A conservative default suitable for a handful of threads:
    /// `width = 4`, `depth = 1`, `shift = 1` (`k = 9`).
    fn default() -> Self {
        Params { width: 4, depth: 1, shift: 1 }
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "width={} depth={} shift={} (k={})",
            self.width,
            self.depth,
            self.shift,
            self.k_bound()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_combinations() {
        for width in 1..6 {
            for depth in 1..6 {
                for shift in 1..=depth {
                    let p = Params::new(width, depth, shift).unwrap();
                    assert_eq!(p.width(), width);
                    assert_eq!(p.depth(), depth);
                    assert_eq!(p.shift(), shift);
                }
            }
        }
    }

    #[test]
    fn new_rejects_zero_width() {
        assert_eq!(Params::new(0, 1, 1).unwrap_err(), ParamsError::ZeroWidth);
    }

    #[test]
    fn new_rejects_zero_depth() {
        assert_eq!(Params::new(1, 0, 1).unwrap_err(), ParamsError::ZeroDepth);
    }

    #[test]
    fn new_rejects_zero_shift() {
        assert_eq!(Params::new(1, 1, 0).unwrap_err(), ParamsError::ZeroShift);
    }

    #[test]
    fn new_rejects_shift_above_depth() {
        assert_eq!(
            Params::new(2, 3, 4).unwrap_err(),
            ParamsError::ShiftExceedsDepth { shift: 4, depth: 3 }
        );
    }

    #[test]
    fn k_bound_paper_matches_theorem_one() {
        let p = Params::new(16, 8, 4).unwrap();
        assert_eq!(p.k_bound_paper(), (2 * 4 + 8) * 15);
    }

    #[test]
    fn k_bound_is_max_of_paper_and_sequential() {
        for w in 1..8 {
            for d in 1..8 {
                for s in 1..=d {
                    let p = Params::new(w, d, s).unwrap();
                    assert_eq!(p.k_bound(), p.k_bound_paper().max(p.k_bound_sequential()));
                }
            }
        }
    }

    #[test]
    fn sequential_bound_dominates_exactly_when_shift_is_small() {
        // 2d - 1 > 2s + d  <=>  s < (d - 1) / 2.
        for d in 1usize..12 {
            for s in 1..=d {
                let p = Params::new(4, d, s).unwrap();
                let seq_dominates = p.k_bound_sequential() > p.k_bound_paper();
                assert_eq!(seq_dominates, 2 * s < d - 1, "d={d} s={s}");
            }
        }
    }

    #[test]
    fn presets_guarantee_equals_paper_formula() {
        // for_threads and for_k only emit depth=1 or shift=depth shapes,
        // where the published Theorem 1 formula is the binding one.
        for threads in [1, 2, 8] {
            let p = Params::for_threads(threads);
            assert_eq!(p.k_bound(), p.k_bound_paper());
            for k in [0usize, 5, 50, 5_000] {
                let p = Params::for_k(k, threads);
                assert_eq!(p.k_bound(), p.k_bound_paper(), "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn k_bound_is_zero_for_single_substack() {
        for depth in 1..10 {
            let p = Params::new(1, depth, depth).unwrap();
            assert_eq!(p.k_bound(), 0, "width=1 must be a strict stack");
        }
    }

    #[test]
    fn for_threads_uses_four_p() {
        for p in 1..33 {
            let params = Params::for_threads(p);
            assert_eq!(params.width(), 4 * p);
            assert_eq!(params.depth(), 1);
            assert_eq!(params.shift(), 1);
        }
    }

    #[test]
    fn for_threads_zero_clamps_to_one() {
        assert_eq!(Params::for_threads(0).width(), 4);
    }

    #[test]
    fn for_k_zero_is_strict() {
        let p = Params::for_k(0, 8);
        assert_eq!(p.width(), 1);
        assert_eq!(p.k_bound(), 0);
    }

    #[test]
    fn for_k_never_exceeds_budget() {
        for threads in [1, 2, 4, 8, 16] {
            for k in [0usize, 1, 2, 3, 5, 9, 30, 100, 450, 1000, 5000, 100_000] {
                let p = Params::for_k(k, threads);
                assert!(
                    p.k_bound() <= k,
                    "k_bound {} exceeds budget {} for threads={} ({p})",
                    p.k_bound(),
                    k,
                    threads
                );
            }
        }
    }

    #[test]
    fn for_k_grows_horizontally_first() {
        // Budget small enough that width stays under 4P: depth must be 1.
        let p = Params::for_k(60, 8);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.shift(), 1);
        assert!(p.width() <= 32);
    }

    #[test]
    fn for_k_switches_to_vertical_at_saturation() {
        let threads = 4;
        let p = Params::for_k(1_000_000, threads);
        assert_eq!(p.width(), 4 * threads);
        assert!(p.depth() > 1);
        assert_eq!(p.shift(), p.depth());
    }

    #[test]
    fn for_k_monotone_in_k() {
        // A larger budget never produces a *smaller* bound.
        let mut last = 0;
        for k in 1..2000 {
            let b = Params::for_k(k, 8).k_bound();
            assert!(b >= last, "k_bound regressed at k={k}: {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn default_is_valid() {
        let p = Params::default();
        assert!(Params::new(p.width(), p.depth(), p.shift()).is_ok());
        assert_eq!(p.k_bound(), 9);
    }

    #[test]
    fn initial_global_equals_depth() {
        let p = Params::new(3, 7, 2).unwrap();
        assert_eq!(p.initial_global(), 7);
    }

    #[test]
    fn display_mentions_every_field() {
        let s = Params::new(2, 3, 1).unwrap().to_string();
        assert!(s.contains("width=2"));
        assert!(s.contains("depth=3"));
        assert!(s.contains("shift=1"));
        assert!(s.contains("k=5"));
    }

    #[test]
    fn params_error_display_is_lowercase_and_informative() {
        let msgs = [
            ParamsError::ZeroWidth.to_string(),
            ParamsError::ZeroDepth.to_string(),
            ParamsError::ZeroShift.to_string(),
            ParamsError::ShiftExceedsDepth { shift: 9, depth: 3 }.to_string(),
        ];
        for m in msgs {
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }
}
