//! The unified window-search engine — one audited hot loop for all three
//! windowed structures.
//!
//! Before this module, the paper's §3 two-phase search existed three times:
//! `stack.rs` carried the full policy (random hops, covering sweep,
//! locality, hop-on-contention) while `queue2d.rs` and `counter2d.rs`
//! hardcoded bespoke covering sweeps. This module owns the *entire* search
//! round for all of them:
//!
//! * the descriptor load — re-read from the [`ElasticWindow`] at the top of
//!   every round, so retunes take effect without blocking in-flight
//!   operations;
//! * the locality-guided (or random) start index;
//! * probe enumeration through [`Probes`] — random-hop phase plus the
//!   covering round-robin sweep, per the configured [`SearchPolicy`];
//! * the restart on an observed `Global` change;
//! * the random hop after a lost CAS (when hop-on-contention is enabled);
//! * per-probe verdict accumulation: the `all_empty` conclusion a consuming
//!   side's `None` return rests on is only derived from probes belonging to
//!   the covering sweep — **including step 0** (the PR 3 off-by-one class
//!   of bug is structurally impossible here);
//! * the shift/restart decision after an exhausted round.
//!
//! What *is* structure-specific — how one cell is validated and mutated,
//! which span of the descriptor a side covers, and which direction the
//! window shifts — enters through the [`ProbeTarget`] trait, implemented by
//! the stack's push/pop sides, the queue's put/get ends and the counter's
//! increment side. The engine is deliberately `pub(crate)`: its contract
//! involves crate-internal descriptor types, and the public surface for
//! policy experimentation is [`SearchConfig`] on the builders. See
//! DESIGN.md §9.
//!
//! # Why only `Global` is re-checked per probe
//!
//! The window descriptor is *not* re-read inside the probe loop (only
//! `Global` is, as in the paper): operations reload it at the top of every
//! round, which already bounds a retune's propagation delay to one search
//! round, and the shrink fence (DESIGN.md §6) tolerates whole in-flight
//! operations on a stale descriptor. A per-probe descriptor load would
//! double the atomic traffic of the hottest loop for nothing. The one
//! exception is the window **shift** after an exhausted round: the live
//! descriptor is re-read immediately before the `Global` CAS, so a window
//! never advances by a stale `shift` (the PR 3 `get_global` fix, now
//! applied uniformly to all three structures).

use crate::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_epoch::Guard;

use crate::rng::HopRng;
use crate::search::{Probes, SearchConfig, SearchPolicy};
use crate::window::{ElasticWindow, WindowDesc};

/// Verdict of probing one cell under the round's `Global` value.
pub(crate) enum Probe<T> {
    /// The operation succeeded on this cell; the search is over.
    Done(T),
    /// A CAS was lost on a valid cell; the round restarts (with a random
    /// hop when hop-on-contention is enabled).
    Contended,
    /// The cell failed window validation but is not known empty (at/above
    /// the window edge, or below the pop floor while holding items). Feeds
    /// `all_empty = false` when probed during the covering sweep.
    Invalid,
    /// The cell was observed empty — the only verdict that keeps a
    /// covering sweep's `all_empty` conclusion alive.
    Empty,
}

/// One side (producing or consuming) of a windowed structure, as seen by
/// the engine: cell probing, the side's span of the descriptor, and the
/// direction its `Global` shifts.
pub(crate) trait ProbeTarget {
    /// What a successful operation yields (`()` for producers, the item
    /// for consumers).
    type Output;

    /// Whether an all-empty covering sweep ends the operation with `None`.
    /// Producing sides retry (shifting the window) until they succeed.
    const CONSUMES: bool;

    /// The number of cells this side covers under descriptor `w`
    /// (`push_width` for producers, `pop_width` for consumers).
    fn span(&self, w: &WindowDesc) -> usize;

    /// Probes cell `index` under the round's descriptor and `Global`.
    fn probe(
        &mut self,
        index: usize,
        w: &WindowDesc,
        global: usize,
        guard: &Guard,
    ) -> Probe<Self::Output>;

    /// The `Global` value an exhausted round proposes to shift to, given
    /// the *live* descriptor; `None` when the window cannot move (a pop
    /// window already resting at its floor).
    fn shift_target(&self, global: usize, live: &WindowDesc) -> Option<usize>;

    /// Stages the side for the next operation of a batched drain
    /// ([`Search::run_batch`]): producing sides load their next node here
    /// and return `false` when no items remain. Consuming sides take the
    /// default (always ready).
    fn reload(&mut self) -> bool {
        true
    }
}

/// Event counts of one engine run, in the engine's own vocabulary; the
/// caller maps them onto its [`OpCounters`](crate::metrics) fields
/// (`shifts` becomes `shifts_up` or `shifts_down` depending on the side).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SearchStats {
    /// Cells validated.
    pub probes: u64,
    /// CASes lost on valid cells.
    pub cas_failures: u64,
    /// Rounds restarted on an observed `Global` change.
    pub restarts: u64,
    /// Window shifts won.
    pub shifts: u64,
    /// Whether a covering sweep concluded `all_empty` (consuming sides).
    pub empty: bool,
}

/// One configured search: the window/global pair a side operates on plus
/// the policy knobs. Construct per operation (it is two references and
/// three scalars) and [`run`](Search::run).
pub(crate) struct Search<'a> {
    window: &'a ElasticWindow,
    global: &'a AtomicUsize,
    policy: SearchPolicy,
    locality: bool,
    hop_on_contention: bool,
}

/// How a search round ended (success returns directly from the loop).
enum RoundEnd {
    /// `Global` changed mid-round; restart from the observed index.
    GlobalChanged(usize),
    /// A CAS was lost on a valid cell.
    Contention,
    /// Every probe failed validation under the round's `Global`.
    Exhausted,
}

impl<'a> Search<'a> {
    /// A search over `window`/`global` with `config`'s policy knobs.
    pub(crate) fn new(
        window: &'a ElasticWindow,
        global: &'a AtomicUsize,
        config: &SearchConfig,
    ) -> Self {
        Search {
            window,
            global,
            policy: config.policy(),
            locality: config.uses_locality(),
            hop_on_contention: config.hops_on_contention(),
        }
    }

    /// Runs search rounds until the operation completes: `Some(value)` on
    /// success, `None` when a covering sweep observed every cell empty (on
    /// a [`ProbeTarget::CONSUMES`] side; producing sides always succeed).
    ///
    /// `last` is the handle's locality state (updated on success), `rng`
    /// its hop RNG. Lock-free: a thread only retries when another thread
    /// made progress (won a CAS, shifted the window, or retuned it).
    pub(crate) fn run<P: ProbeTarget>(
        &self,
        target: &mut P,
        last: &mut usize,
        rng: &mut HopRng,
        guard: &Guard,
    ) -> (Option<P::Output>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut resume: Option<usize> = None;
        loop {
            // Re-read the window descriptor every round: retunes take
            // effect without blocking in-flight operations.
            let w = self.window.load(guard);
            let width = target.span(w);
            let at = match resume.take() {
                // A restart resumes near where the previous round stopped
                // (wrapped: a retune may have narrowed the span below it).
                Some(s) => s % width,
                None if self.locality => *last % width,
                None => rng.bounded(width),
            };
            let global = self.global.load(Ordering::SeqCst);
            let mut all_empty = true;
            let mut end = RoundEnd::Exhausted;
            // Inner scope: `probes` borrows the rng, which the
            // hop-on-contention restart below needs back.
            {
                let mut probes = Probes::new(self.policy, width, at, rng);
                let mut probe_no = 0;
                // `probes` is consumed manually (not a `for` loop) because
                // the verdict accumulation needs `in_coverage` queries
                // mid-iteration.
                #[allow(clippy::while_let_on_iterator)]
                while let Some(i) = probes.next() {
                    stats.probes += 1;
                    let in_coverage = probes.in_coverage(probe_no);
                    probe_no += 1;
                    // Restart on any observed Global change (§3
                    // optimization).
                    if self.global.load(Ordering::SeqCst) != global {
                        end = RoundEnd::GlobalChanged(i);
                        break;
                    }
                    match target.probe(i, w, global, guard) {
                        Probe::Done(value) => {
                            *last = i;
                            return (Some(value), stats);
                        }
                        Probe::Contended => {
                            end = RoundEnd::Contention;
                            break;
                        }
                        // Only covering-sweep probes feed the verdict; a
                        // non-empty cell anywhere in the sweep kills it.
                        Probe::Invalid => {
                            if in_coverage {
                                all_empty = false;
                            }
                        }
                        Probe::Empty => {}
                    }
                }
            }
            match end {
                RoundEnd::GlobalChanged(i) => {
                    stats.restarts += 1;
                    resume = Some(i);
                }
                RoundEnd::Contention => {
                    stats.cas_failures += 1;
                    // Contention avoidance: hop to a random cell instead of
                    // retrying the fought-over one (paper default).
                    resume = Some(if self.hop_on_contention { rng.bounded(width) } else { at });
                }
                RoundEnd::Exhausted => {
                    if P::CONSUMES && all_empty {
                        // A covering sweep under one Global saw only empty
                        // cells: report empty.
                        stats.empty = true;
                        return (None, stats);
                    }
                    // No valid cell anywhere: propose a window shift. The
                    // live descriptor is re-read so the window never moves
                    // by a stale shift; a failed CAS means another thread
                    // moved Global — either way the window changed and the
                    // search restarts fresh (from locality).
                    let live = self.window.load(guard);
                    if let Some(next) = target.shift_target(global, live) {
                        if self
                            .global
                            .compare_exchange(global, next, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            stats.shifts += 1;
                        }
                    }
                }
            }
        }
    }

    /// Batched variant of [`Search::run`]: searches exactly like `run`,
    /// but after winning a cell it keeps **draining that same cell** —
    /// re-checking `Global` and revalidating the cell before every extra
    /// item — until `max` operations completed, the cell stops validating,
    /// or `w.depth` items were taken in the round (the window's per-cell
    /// budget, which is what keeps a batch inside Theorem 1's `k`: a batch
    /// never takes more from one cell than the window already permits).
    ///
    /// Returns the completed outputs (producers: one `()` per item
    /// pushed). A consuming side returns short when a covering sweep
    /// concludes every cell is empty (`stats.empty` is set, as in `run`).
    /// With `max == 1` the observable effects are exactly `run`'s: same
    /// probe order, same RNG consumption, same cell transitions.
    pub(crate) fn run_batch<P: ProbeTarget>(
        &self,
        target: &mut P,
        max: usize,
        last: &mut usize,
        rng: &mut HopRng,
        guard: &Guard,
    ) -> (Vec<P::Output>, SearchStats) {
        let mut stats = SearchStats::default();
        // archlint: allow(no-raw-alloc-in-hot-path) — one output buffer
        // for the whole batch, amortized across up to `max` operations.
        let mut out = Vec::with_capacity(max);
        if max == 0 {
            return (out, stats);
        }
        // One retirement fence for the whole batch: every node/descriptor
        // the drain unlinks buffers inside this scope and is epoch-tagged
        // when it drops (a later tag than per-op retirement would give —
        // conservative, so reclamation is only ever delayed). A 1-op batch
        // has nothing to amortize, so it skips the scope bookkeeping and
        // stays on exactly `run`'s retirement path.
        let _retire_scope = (max > 1).then(|| guard.retire_batch());
        let mut resume: Option<usize> = None;
        loop {
            let w = self.window.load(guard);
            let width = target.span(w);
            let at = match resume.take() {
                Some(s) => s % width,
                None if self.locality => *last % width,
                None => rng.bounded(width),
            };
            let global = self.global.load(Ordering::SeqCst);
            let mut all_empty = true;
            let mut end = RoundEnd::Exhausted;
            // The cell the search round succeeded on, drained below once
            // the probe iterator (and its rng borrow) is released.
            let mut won: Option<usize> = None;
            {
                let mut probes = Probes::new(self.policy, width, at, rng);
                let mut probe_no = 0;
                #[allow(clippy::while_let_on_iterator)]
                while let Some(i) = probes.next() {
                    stats.probes += 1;
                    let in_coverage = probes.in_coverage(probe_no);
                    probe_no += 1;
                    if self.global.load(Ordering::SeqCst) != global {
                        end = RoundEnd::GlobalChanged(i);
                        break;
                    }
                    match target.probe(i, w, global, guard) {
                        Probe::Done(value) => {
                            *last = i;
                            // archlint: allow(no-raw-alloc-in-hot-path) —
                            // pre-sized push into the batch buffer.
                            out.push(value);
                            if out.len() >= max || !target.reload() {
                                return (out, stats);
                            }
                            won = Some(i);
                            break;
                        }
                        Probe::Contended => {
                            end = RoundEnd::Contention;
                            break;
                        }
                        Probe::Invalid => {
                            if in_coverage {
                                all_empty = false;
                            }
                        }
                        Probe::Empty => {}
                    }
                }
            }
            if let Some(i) = won {
                // Drain the won cell under the round's descriptor; one
                // item is already out.
                let mut drained = 1usize;
                loop {
                    if drained >= w.depth {
                        // Per-round cell budget spent; search again (the
                        // next round revisits `i` first via locality).
                        resume = Some(i);
                        break;
                    }
                    // Fresh Global per drained item: the validity check
                    // below always runs against the live window position.
                    let g = self.global.load(Ordering::SeqCst);
                    stats.probes += 1;
                    match target.probe(i, w, g, guard) {
                        Probe::Done(value) => {
                            // archlint: allow(no-raw-alloc-in-hot-path) —
                            // pre-sized push into the batch buffer.
                            out.push(value);
                            drained += 1;
                            if out.len() >= max || !target.reload() {
                                return (out, stats);
                            }
                        }
                        Probe::Contended => {
                            stats.cas_failures += 1;
                            resume =
                                Some(if self.hop_on_contention { rng.bounded(width) } else { i });
                            break;
                        }
                        // The cell stopped validating (window edge or
                        // exhausted): fall back to a full search round.
                        Probe::Invalid | Probe::Empty => {
                            resume = Some(i);
                            break;
                        }
                    }
                }
                continue;
            }
            match end {
                RoundEnd::GlobalChanged(i) => {
                    stats.restarts += 1;
                    resume = Some(i);
                }
                RoundEnd::Contention => {
                    stats.cas_failures += 1;
                    resume = Some(if self.hop_on_contention { rng.bounded(width) } else { at });
                }
                RoundEnd::Exhausted => {
                    if P::CONSUMES && all_empty {
                        // Every cell empty under one Global: the batch ends
                        // here, possibly short.
                        stats.empty = true;
                        return (out, stats);
                    }
                    let live = self.window.load(guard);
                    if let Some(next) = target.shift_target(global, live) {
                        if self
                            .global
                            .compare_exchange(global, next, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            stats.shifts += 1;
                        }
                    }
                }
            }
        }
    }
}
