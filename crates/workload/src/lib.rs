//! # stack2d-workload — workload substrate for the 2D-Stack experiments
//!
//! Everything the paper's evaluation loop needs, algorithm-independent:
//!
//! * [`mix`] — push/pop ratios ([`OpMix`]; the paper's default draws each
//!   with probability 1/2);
//! * [`runner`] — the timed multi-thread measurement loop
//!   ([`run_throughput`]) and a deterministic fixed-op variant for tests
//!   ([`run_fixed_ops`]), both generic over
//!   [`ConcurrentStack`](stack2d::ConcurrentStack);
//! * [`LatencyHistogram`] — the log-linear latency histogram, re-exported
//!   from `stack2d-telemetry` (its home since the observability layer
//!   landed) so existing `stack2d_workload::LatencyHistogram` users keep
//!   compiling;
//! * [`affinity`] — the paper's thread-placement policy (fill socket 0,
//!   then socket 1, then hyperthreads) as pure logic, with an explicit
//!   no-op pinning shim (see DESIGN.md §3 for the substitution).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
pub mod mix;
pub mod phases;
pub mod runner;

pub use mix::OpMix;
pub use phases::{run_phased, run_roles, Phase, Workload};
pub use runner::{prefill, run_fixed_ops, run_throughput, RunConfig, RunResult};
pub use stack2d_telemetry::LatencyHistogram;
