//! Phased and role-based workloads.
//!
//! The paper's evaluation uses a stationary symmetric mix; real stack
//! clients are often *phasic* (fill then drain, bursts) or *asymmetric by
//! role* (dedicated producers and consumers). This module extends the
//! runner with both shapes, used by the producer/consumer example and the
//! burst-behaviour tests.

use std::sync::Barrier;

use serde::{Deserialize, Serialize};

use stack2d::rng::HopRng;
use stack2d::{OpsHandle, RelaxedOps};

use crate::mix::OpMix;
use crate::runner::RunResult;

/// One phase of a phased workload: `ops` operations drawn from `mix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Operations per thread in this phase.
    pub ops: usize,
    /// Push/pop ratio during this phase.
    pub mix: OpMix,
}

impl Phase {
    /// Creates a phase.
    pub fn new(ops: usize, mix: OpMix) -> Self {
        Phase { ops, mix }
    }
}

/// A per-thread sequence of phases.
///
/// # Examples
///
/// ```
/// use stack2d_workload::phases::Workload;
/// use stack2d_workload::OpMix;
///
/// // Fill (1000 pushes), churn (2000 mixed), drain (2000 pops).
/// let w = Workload::fill_churn_drain(1_000, 2_000);
/// assert_eq!(w.total_ops_per_thread(), 5_000);
/// assert_eq!(w.phases()[0].mix, OpMix::new(1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    phases: Vec<Phase>,
}

impl Workload {
    /// A workload from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        Workload { phases }
    }

    /// Classic pool lifecycle: all-push fill, symmetric churn, all-pop
    /// drain (drain sized as fill + half the churn so it reaches empty).
    pub fn fill_churn_drain(fill: usize, churn: usize) -> Self {
        Workload::new(vec![
            Phase::new(fill, OpMix::new(1000)),
            Phase::new(churn, OpMix::symmetric()),
            Phase::new(fill + churn / 2, OpMix::new(0)),
        ])
    }

    /// Alternating push-heavy/pop-heavy bursts.
    pub fn bursty(bursts: usize, burst_ops: usize) -> Self {
        let mut phases = Vec::with_capacity(bursts);
        for i in 0..bursts.max(1) {
            let mix = if i % 2 == 0 { OpMix::push_percent(90) } else { OpMix::push_percent(10) };
            phases.push(Phase::new(burst_ops, mix));
        }
        Workload::new(phases)
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Operations each thread performs over all phases.
    pub fn total_ops_per_thread(&self) -> usize {
        self.phases.iter().map(|p| p.ops).sum()
    }
}

/// Runs `workload` on every one of `threads` threads (synchronized at
/// phase boundaries so bursts actually overlap).
pub fn run_phased<S: RelaxedOps<u64>>(
    stack: &S,
    threads: usize,
    workload: &Workload,
    seed: u64,
) -> RunResult {
    assert!(threads > 0, "at least one thread required");
    let barrier = Barrier::new(threads);
    let t0 = std::time::Instant::now();
    let per_thread: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let barrier = &barrier;
            joins.push(scope.spawn(move || {
                let mut h = stack.ops_handle_seeded(seed.wrapping_add(t as u64 + 1));
                // XOR decorrelates the mix stream from the handle RNG,
                // which is seeded with the same per-thread value.
                let mut rng =
                    HopRng::seeded(seed.wrapping_add(t as u64 + 1) ^ 0x5851_F42D_4C95_7F2D);
                let mut pushes = 0u64;
                let mut pops = 0u64;
                let mut empty = 0u64;
                let mut value = (t as u64) << 48;
                for phase in workload.phases() {
                    // Phase boundaries are synchronization points: bursts
                    // overlap across threads instead of drifting apart.
                    barrier.wait();
                    for _ in 0..phase.ops {
                        if phase.mix.next_is_push(&mut rng) {
                            h.produce(value);
                            value += 1;
                            pushes += 1;
                        } else if h.consume().is_some() {
                            pops += 1;
                        } else {
                            empty += 1;
                        }
                    }
                }
                (pushes, pops, empty)
            }));
        }
        joins.into_iter().map(|j| j.join().expect("phased worker panicked")).collect()
    });
    RunResult {
        pushes: per_thread.iter().map(|p| p.0).sum(),
        pops: per_thread.iter().map(|p| p.1).sum(),
        empty_pops: per_thread.iter().map(|p| p.2).sum(),
        elapsed: t0.elapsed(),
        per_thread_ops: per_thread.iter().map(|p| p.0 + p.1 + p.2).collect(),
    }
}

/// Runs a role-based workload: thread `t` draws from `roles[t]` for
/// `ops_per_thread` operations (e.g. dedicated producers `OpMix::new(1000)`
/// and consumers `OpMix::new(0)`).
pub fn run_roles<S: RelaxedOps<u64>>(
    stack: &S,
    roles: &[OpMix],
    ops_per_thread: usize,
    seed: u64,
) -> RunResult {
    assert!(!roles.is_empty(), "at least one role required");
    let barrier = Barrier::new(roles.len());
    let t0 = std::time::Instant::now();
    let per_thread: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (t, &mix) in roles.iter().enumerate() {
            let barrier = &barrier;
            joins.push(scope.spawn(move || {
                let mut h = stack.ops_handle_seeded(seed.wrapping_add(t as u64 + 1));
                // XOR decorrelates the mix stream from the handle RNG,
                // which is seeded with the same per-thread value.
                let mut rng =
                    HopRng::seeded(seed.wrapping_add(t as u64 + 1) ^ 0x5851_F42D_4C95_7F2D);
                let mut pushes = 0u64;
                let mut pops = 0u64;
                let mut empty = 0u64;
                let mut value = (t as u64) << 48;
                barrier.wait();
                for _ in 0..ops_per_thread {
                    if mix.next_is_push(&mut rng) {
                        h.produce(value);
                        value += 1;
                        pushes += 1;
                    } else if h.consume().is_some() {
                        pops += 1;
                    } else {
                        empty += 1;
                    }
                }
                (pushes, pops, empty)
            }));
        }
        joins.into_iter().map(|j| j.join().expect("role worker panicked")).collect()
    });
    RunResult {
        pushes: per_thread.iter().map(|p| p.0).sum(),
        pops: per_thread.iter().map(|p| p.1).sum(),
        empty_pops: per_thread.iter().map(|p| p.2).sum(),
        elapsed: t0.elapsed(),
        per_thread_ops: per_thread.iter().map(|p| p.0 + p.1 + p.2).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::{Params, Stack2D};

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_workload_panics() {
        Workload::new(vec![]);
    }

    #[test]
    fn fill_churn_drain_reaches_empty() {
        let stack = Stack2D::new(Params::for_threads(2));
        let w = Workload::fill_churn_drain(500, 1_000);
        let r = run_phased(&stack, 2, &w, 7);
        assert_eq!(r.total_ops() as usize, 2 * w.total_ops_per_thread());
        // The drain phase is sized to exhaust the stack.
        assert!(stack.is_empty(), "drain phase should empty the stack");
        assert!(r.empty_pops > 0, "over-sized drain must observe empty");
    }

    #[test]
    fn bursty_alternates_mixes() {
        let w = Workload::bursty(4, 100);
        assert_eq!(w.phases().len(), 4);
        assert_eq!(w.phases()[0].mix, OpMix::push_percent(90));
        assert_eq!(w.phases()[1].mix, OpMix::push_percent(10));
        let stack = Stack2D::new(Params::for_threads(2));
        let r = run_phased(&stack, 2, &w, 3);
        assert_eq!(r.total_ops(), 800);
    }

    #[test]
    fn roles_split_producers_and_consumers() {
        let stack = Stack2D::new(Params::for_threads(4));
        let roles = vec![OpMix::new(1000), OpMix::new(1000), OpMix::new(0), OpMix::new(0)];
        let r = run_roles(&stack, &roles, 5_000, 9);
        assert_eq!(r.pushes, 10_000, "producers only push");
        assert_eq!(r.pops + r.empty_pops, 10_000, "consumers only pop");
        // Consumers can never pop more than producers pushed.
        assert!(r.pops <= r.pushes);
        assert_eq!(stack.len() as u64, r.pushes - r.pops);
    }

    #[test]
    fn single_thread_roles_work() {
        let stack = Stack2D::new(Params::for_threads(1));
        let r = run_roles(&stack, &[OpMix::symmetric()], 1_000, 1);
        assert_eq!(r.total_ops(), 1_000);
    }
}
