//! The timed multi-thread workload runner.
//!
//! Reproduces the paper's measurement loop (§4): `P` threads, each drawing
//! push/pop uniformly from the configured mix with **no computational load
//! between operations** (maximum contention), running against a stack
//! pre-filled with 32,768 items for a fixed wall-clock duration; throughput
//! is reported in operations per second and runs are repeated and averaged
//! by the harness.
//!
//! The runner is generic over [`RelaxedOps`], so the identical loop
//! drives the 2D-Stack and every baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use stack2d::rng::HopRng;
use stack2d::{OpsHandle, RelaxedOps};

use crate::mix::OpMix;

/// Configuration of one timed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of worker threads (`P` in the paper).
    pub threads: usize,
    /// Wall-clock measurement window (paper: 5 s; defaults here are shorter
    /// so the full figure suite stays tractable — see EXPERIMENTS.md).
    pub duration: Duration,
    /// Push/pop ratio (paper: symmetric).
    pub mix: OpMix,
    /// Items pushed before measurement starts (paper: 32,768, "to avoid
    /// NULL returns that might arise from empty sub-stacks").
    pub prefill: usize,
    /// Base RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
    /// Busy-work iterations between operations (paper: 0, i.e. high
    /// contention).
    pub think_work: u32,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 2,
            duration: Duration::from_millis(100),
            mix: OpMix::symmetric(),
            prefill: 32_768,
            seed: 0xD15EA5E,
            think_work: 0,
        }
    }
}

/// Aggregate results of one timed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Completed push operations.
    pub pushes: u64,
    /// Pop operations that returned an item.
    pub pops: u64,
    /// Pop operations that found the stack empty.
    pub empty_pops: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Operations completed by each thread (fairness diagnostics).
    pub per_thread_ops: Vec<u64>,
}

impl RunResult {
    /// All operations (pushes + pops + empty pops).
    pub fn total_ops(&self) -> u64 {
        self.pushes + self.pops + self.empty_pops
    }

    /// Operations per second — the paper's throughput metric.
    pub fn throughput(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64()
    }

    /// Ratio of the busiest to the laziest thread (1.0 = perfectly fair);
    /// returns `None` for runs with no completed ops on some thread.
    pub fn fairness(&self) -> Option<f64> {
        let max = *self.per_thread_ops.iter().max()?;
        let min = *self.per_thread_ops.iter().min()?;
        if min == 0 {
            None
        } else {
            Some(max as f64 / min as f64)
        }
    }
}

/// Pre-fills `stack` with `n` items carrying distinguishable values.
pub fn prefill<S: RelaxedOps<u64>>(stack: &S, n: usize) {
    let mut h = stack.ops_handle();
    for i in 0..n {
        // High bit marks prefill items, helpful when debugging traces.
        h.produce((1 << 63) | i as u64);
    }
}

/// Runs the paper's timed throughput loop against `stack`.
///
/// The stack is pre-filled, then `cfg.threads` workers start behind a
/// barrier and hammer the stack until the deadline; per-thread op counts
/// are aggregated into a [`RunResult`].
pub fn run_throughput<S: RelaxedOps<u64>>(stack: &S, cfg: &RunConfig) -> RunResult {
    assert!(cfg.threads > 0, "at least one thread required");
    prefill(stack, cfg.prefill);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(cfg.threads + 1);
    let mut per_thread = vec![(0u64, 0u64, 0u64); cfg.threads];
    let started = Instant::now(); // overwritten after the barrier below
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let stop = &stop;
            let barrier = &barrier;
            joins.push(scope.spawn(move || {
                let mut h = stack.ops_handle_seeded(cfg.seed.wrapping_add(t as u64 + 1));
                // XOR decorrelates the mix stream from the handle RNG,
                // which is seeded with the same per-thread value.
                let mut rng =
                    HopRng::seeded(cfg.seed.wrapping_add(t as u64 + 1) ^ 0x5851_F42D_4C95_7F2D);
                let mut pushes = 0u64;
                let mut pops = 0u64;
                let mut empty = 0u64;
                let mut next_value = (t as u64) << 48;
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    if cfg.mix.next_is_push(&mut rng) {
                        h.produce(next_value);
                        next_value += 1;
                        pushes += 1;
                    } else if h.consume().is_some() {
                        pops += 1;
                    } else {
                        empty += 1;
                    }
                    for _ in 0..cfg.think_work {
                        core::hint::spin_loop();
                    }
                }
                (pushes, pops, empty)
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for (t, j) in joins.into_iter().enumerate() {
            per_thread[t] = j.join().expect("worker panicked");
        }
        elapsed = t0.elapsed();
    });
    let _ = started;

    RunResult {
        pushes: per_thread.iter().map(|p| p.0).sum(),
        pops: per_thread.iter().map(|p| p.1).sum(),
        empty_pops: per_thread.iter().map(|p| p.2).sum(),
        elapsed,
        per_thread_ops: per_thread.iter().map(|p| p.0 + p.1 + p.2).collect(),
    }
}

/// Runs a deterministic fixed-op-count workload (each thread performs
/// exactly `ops_per_thread` operations); used by tests where wall-clock
/// runs would be flaky.
pub fn run_fixed_ops<S: RelaxedOps<u64>>(
    stack: &S,
    threads: usize,
    ops_per_thread: usize,
    mix: OpMix,
    seed: u64,
) -> RunResult {
    assert!(threads > 0, "at least one thread required");
    let barrier = Barrier::new(threads);
    let mut per_thread = vec![(0u64, 0u64, 0u64); threads];
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(threads);
        for t in 0..threads {
            let barrier = &barrier;
            joins.push(scope.spawn(move || {
                let mut h = stack.ops_handle_seeded(seed.wrapping_add(t as u64 + 1));
                // Same decorrelation as run_throughput.
                let mut rng =
                    HopRng::seeded(seed.wrapping_add(t as u64 + 1) ^ 0x5851_F42D_4C95_7F2D);
                let mut pushes = 0u64;
                let mut pops = 0u64;
                let mut empty = 0u64;
                let mut next_value = (t as u64) << 48;
                barrier.wait();
                for _ in 0..ops_per_thread {
                    if mix.next_is_push(&mut rng) {
                        h.produce(next_value);
                        next_value += 1;
                        pushes += 1;
                    } else if h.consume().is_some() {
                        pops += 1;
                    } else {
                        empty += 1;
                    }
                }
                (pushes, pops, empty)
            }));
        }
        for (t, j) in joins.into_iter().enumerate() {
            per_thread[t] = j.join().expect("worker panicked");
        }
    });

    RunResult {
        pushes: per_thread.iter().map(|p| p.0).sum(),
        pops: per_thread.iter().map(|p| p.1).sum(),
        empty_pops: per_thread.iter().map(|p| p.2).sum(),
        elapsed: t0.elapsed(),
        per_thread_ops: per_thread.iter().map(|p| p.0 + p.1 + p.2).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::{Params, Stack2D};
    use stack2d_baselines::TreiberStack;

    #[test]
    fn fixed_ops_accounts_every_operation() {
        let stack = Stack2D::new(Params::for_threads(2));
        let r = run_fixed_ops(&stack, 2, 1_000, OpMix::symmetric(), 7);
        assert_eq!(r.total_ops(), 2_000);
        assert_eq!(r.per_thread_ops, vec![1_000, 1_000]);
        // Residual items = pushes - pops.
        assert_eq!(stack.len() as u64, r.pushes - r.pops);
    }

    #[test]
    fn fixed_ops_all_push_leaves_everything_resident() {
        let stack = TreiberStack::new();
        let r = run_fixed_ops(&stack, 2, 500, OpMix::new(1000), 1);
        assert_eq!(r.pushes, 1_000);
        assert_eq!(r.pops, 0);
        assert_eq!(r.empty_pops, 0);
    }

    #[test]
    fn fixed_ops_all_pop_on_empty_counts_empty() {
        let stack = TreiberStack::new();
        let r = run_fixed_ops(&stack, 2, 500, OpMix::new(0), 1);
        assert_eq!(r.pushes, 0);
        assert_eq!(r.pops, 0);
        assert_eq!(r.empty_pops, 1_000);
    }

    #[test]
    fn timed_run_produces_positive_throughput() {
        let stack = Stack2D::new(Params::for_threads(2));
        let cfg = RunConfig {
            threads: 2,
            duration: Duration::from_millis(50),
            prefill: 1_000,
            ..RunConfig::default()
        };
        let r = run_throughput(&stack, &cfg);
        assert!(r.total_ops() > 0, "no ops completed");
        assert!(r.throughput() > 0.0);
        assert!(r.elapsed >= Duration::from_millis(50));
        assert_eq!(r.per_thread_ops.len(), 2);
    }

    #[test]
    fn prefill_marks_values() {
        let stack = TreiberStack::new();
        prefill(&stack, 10);
        let v = stack.pop().unwrap();
        assert!(v & (1 << 63) != 0, "prefill marker missing: {v:#x}");
    }

    #[test]
    fn fairness_is_computed() {
        let r = RunResult {
            pushes: 0,
            pops: 0,
            empty_pops: 0,
            elapsed: Duration::from_secs(1),
            per_thread_ops: vec![100, 50],
        };
        assert_eq!(r.fairness(), Some(2.0));
        let zero = RunResult { per_thread_ops: vec![100, 0], ..r };
        assert_eq!(zero.fairness(), None);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let stack: TreiberStack<u64> = TreiberStack::new();
        run_fixed_ops(&stack, 0, 1, OpMix::symmetric(), 0);
    }

    #[test]
    fn results_are_deterministic_single_thread() {
        let a = {
            let stack = Stack2D::new(Params::new(4, 2, 1).unwrap());
            run_fixed_ops(&stack, 1, 5_000, OpMix::symmetric(), 42)
        };
        let b = {
            let stack = Stack2D::new(Params::new(4, 2, 1).unwrap());
            run_fixed_ops(&stack, 1, 5_000, OpMix::symmetric(), 42)
        };
        assert_eq!(a.pushes, b.pushes);
        assert_eq!(a.pops, b.pops);
        assert_eq!(a.empty_pops, b.empty_pops);
    }
}
