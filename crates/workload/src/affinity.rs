//! Thread-placement model of the paper's testbed, with a no-op apply shim.
//!
//! The paper pins one thread per core on a 2×8-core Xeon: *"filling one
//! processor at a time up-to 16 threads before we switch to hyper-
//! threading"*, giving an intra-socket regime (1–8 threads) and an
//! inter-socket regime (9–16). This module reproduces that *placement
//! policy* as pure logic — which core each thread would occupy, and which
//! NUMA regime a thread count lands in — so the harness can label its
//! results the way the paper's figures do.
//!
//! Actually applying the pinning requires OS affinity syscalls that are out
//! of scope for this repo's dependency budget (and meaningless on the
//! single-core container the reproduction runs on — see DESIGN.md §3);
//! [`pin_current_thread`] is therefore an explicit no-op that reports
//! [`PinOutcome::Unsupported`].

use serde::{Deserialize, Serialize};

/// A machine topology: sockets × cores-per-socket × SMT ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Number of processor sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core.
    pub smt: usize,
}

impl Topology {
    /// The paper's Intel Xeon E5-2687W v2 testbed: 2 sockets × 8 cores × 2
    /// hyperthreads.
    pub fn paper_xeon() -> Self {
        Topology { sockets: 2, cores_per_socket: 8, smt: 2 }
    }

    /// Total hardware threads.
    pub fn hw_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.smt
    }

    /// Total physical cores.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }
}

/// NUMA regime a thread count falls into under the paper's fill order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumaRegime {
    /// All threads on one socket (paper: 1–8 threads).
    IntraSocket,
    /// Threads span sockets (paper: 9–16 threads).
    InterSocket,
    /// More threads than physical cores: hyperthread sharing.
    HyperThreaded,
}

/// The core a given thread index occupies under the paper's fill order:
/// fill socket 0's physical cores, then socket 1's, then revisit for
/// hyperthreads.
///
/// Returns `(socket, core_within_socket, smt_way)`.
///
/// # Examples
///
/// ```
/// use stack2d_workload::affinity::{placement, Topology};
///
/// let topo = Topology::paper_xeon();
/// assert_eq!(placement(0, topo), (0, 0, 0));
/// assert_eq!(placement(7, topo), (0, 7, 0));   // socket 0 full
/// assert_eq!(placement(8, topo), (1, 0, 0));   // spill to socket 1
/// assert_eq!(placement(16, topo), (0, 0, 1));  // hyperthreads start
/// ```
pub fn placement(thread: usize, topo: Topology) -> (usize, usize, usize) {
    let per_round = topo.cores();
    let smt_way = (thread / per_round) % topo.smt;
    let within = thread % per_round;
    let socket = within / topo.cores_per_socket;
    let core = within % topo.cores_per_socket;
    (socket, core, smt_way)
}

/// NUMA regime for running `threads` threads under the paper's fill order.
///
/// # Examples
///
/// ```
/// use stack2d_workload::affinity::{regime, NumaRegime, Topology};
///
/// let topo = Topology::paper_xeon();
/// assert_eq!(regime(8, topo), NumaRegime::IntraSocket);
/// assert_eq!(regime(9, topo), NumaRegime::InterSocket);
/// assert_eq!(regime(17, topo), NumaRegime::HyperThreaded);
/// ```
pub fn regime(threads: usize, topo: Topology) -> NumaRegime {
    if threads <= topo.cores_per_socket {
        NumaRegime::IntraSocket
    } else if threads <= topo.cores() {
        NumaRegime::InterSocket
    } else {
        NumaRegime::HyperThreaded
    }
}

/// Result of a pinning request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinOutcome {
    /// Pinning is not performed in this build (see module docs).
    Unsupported,
}

/// Requests that the current thread be pinned to `core`.
///
/// This build performs no OS-level pinning (see the module docs for the
/// substitution rationale) and always returns
/// [`PinOutcome::Unsupported`]; callers treat that as advisory.
pub fn pin_current_thread(_core: usize) -> PinOutcome {
    PinOutcome::Unsupported
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_counts() {
        let t = Topology::paper_xeon();
        assert_eq!(t.cores(), 16);
        assert_eq!(t.hw_threads(), 32);
    }

    #[test]
    fn fill_order_matches_paper() {
        let t = Topology::paper_xeon();
        // First 8 threads on socket 0, one per core.
        for i in 0..8 {
            assert_eq!(placement(i, t), (0, i, 0));
        }
        // Next 8 on socket 1.
        for i in 8..16 {
            assert_eq!(placement(i, t), (1, i - 8, 0));
        }
        // Then hyperthreads, socket 0 again.
        assert_eq!(placement(16, t), (0, 0, 1));
        assert_eq!(placement(24, t), (1, 0, 1));
    }

    #[test]
    fn regimes_match_paper_thread_ranges() {
        let t = Topology::paper_xeon();
        for p in 1..=8 {
            assert_eq!(regime(p, t), NumaRegime::IntraSocket, "P={p}");
        }
        for p in 9..=16 {
            assert_eq!(regime(p, t), NumaRegime::InterSocket, "P={p}");
        }
        assert_eq!(regime(17, t), NumaRegime::HyperThreaded);
    }

    #[test]
    fn placement_never_exceeds_topology() {
        let t = Topology::paper_xeon();
        for thread in 0..64 {
            let (s, c, w) = placement(thread, t);
            assert!(s < t.sockets);
            assert!(c < t.cores_per_socket);
            assert!(w < t.smt);
        }
    }

    #[test]
    fn pinning_is_an_explicit_noop() {
        assert_eq!(pin_current_thread(3), PinOutcome::Unsupported);
    }
}
