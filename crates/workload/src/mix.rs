//! Operation mixes: what fraction of operations are pushes.
//!
//! The paper's main experiments draw push/pop uniformly at random with
//! probability 1/2 each ([`OpMix::symmetric`]); the asymmetry experiment
//! (motivated by §2's observation that elimination "deteriorates when
//! workloads are asymmetric") sweeps the ratio.

use serde::{Deserialize, Serialize};

use stack2d::rng::HopRng;

/// A push/pop ratio, in permille (so exact sweeps like 10%…90% are
/// representable without floating point).
///
/// # Examples
///
/// ```
/// use stack2d_workload::OpMix;
///
/// let mix = OpMix::symmetric();
/// assert_eq!(mix.push_permille(), 500);
/// assert!((mix.push_fraction() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpMix {
    push_permille: u16,
}

impl OpMix {
    /// A mix pushing `permille`/1000 of the time.
    ///
    /// # Panics
    ///
    /// Panics if `permille > 1000`.
    pub fn new(permille: u16) -> Self {
        assert!(permille <= 1000, "permille must be at most 1000");
        OpMix { push_permille: permille }
    }

    /// The paper's default: push and pop with probability 1/2 each.
    pub fn symmetric() -> Self {
        OpMix { push_permille: 500 }
    }

    /// A push-heavy mix (`percent`% pushes).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn push_percent(percent: u16) -> Self {
        assert!(percent <= 100, "percent must be at most 100");
        OpMix { push_permille: percent * 10 }
    }

    /// Push probability in permille.
    #[inline]
    pub fn push_permille(&self) -> u16 {
        self.push_permille
    }

    /// Push probability as a fraction.
    #[inline]
    pub fn push_fraction(&self) -> f64 {
        self.push_permille as f64 / 1000.0
    }

    /// Draws the next operation: `true` = push.
    #[inline]
    pub fn next_is_push(&self, rng: &mut HopRng) -> bool {
        rng.bounded(1000) < self.push_permille as usize
    }
}

impl Default for OpMix {
    fn default() -> Self {
        Self::symmetric()
    }
}

impl core::fmt::Display for OpMix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{} push/pop", self.push_permille / 10, (1000 - self.push_permille) / 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_is_half() {
        assert_eq!(OpMix::symmetric().push_fraction(), 0.5);
    }

    #[test]
    fn push_percent_conversion() {
        assert_eq!(OpMix::push_percent(90).push_permille(), 900);
        assert_eq!(OpMix::push_percent(0).push_permille(), 0);
        assert_eq!(OpMix::push_percent(100).push_permille(), 1000);
    }

    #[test]
    #[should_panic(expected = "permille must be at most 1000")]
    fn overflow_permille_panics() {
        OpMix::new(1001);
    }

    #[test]
    #[should_panic(expected = "percent must be at most 100")]
    fn overflow_percent_panics() {
        OpMix::push_percent(101);
    }

    #[test]
    fn extreme_mixes_are_deterministic() {
        let mut rng = HopRng::seeded(1);
        let all_push = OpMix::new(1000);
        let all_pop = OpMix::new(0);
        for _ in 0..100 {
            assert!(all_push.next_is_push(&mut rng));
            assert!(!all_pop.next_is_push(&mut rng));
        }
    }

    #[test]
    fn symmetric_draw_is_roughly_balanced() {
        let mut rng = HopRng::seeded(42);
        let mix = OpMix::symmetric();
        let pushes = (0..100_000).filter(|_| mix.next_is_push(&mut rng)).count();
        assert!((45_000..55_000).contains(&pushes), "pushes={pushes}");
    }

    #[test]
    fn skewed_draw_tracks_ratio() {
        let mut rng = HopRng::seeded(42);
        let mix = OpMix::push_percent(90);
        let pushes = (0..100_000).filter(|_| mix.next_is_push(&mut rng)).count();
        assert!((88_000..92_000).contains(&pushes), "pushes={pushes}");
    }

    #[test]
    fn display_shows_percentages() {
        assert_eq!(OpMix::push_percent(30).to_string(), "30/70 push/pop");
    }
}
