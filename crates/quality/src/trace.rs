//! Trace recording and replay.
//!
//! The offline checker ([`crate::checker`]) consumes operation traces; this
//! module produces them. [`TraceRecorder`] wraps any stack handle and logs
//! every operation with fresh unique labels; traces serialize (serde) so a
//! failing run can be stored and replayed as a regression test, and
//! [`replay`] re-executes a trace against any other stack to compare
//! behaviours.

use serde::{Deserialize, Serialize};

use crate::checker::{check_k_out_of_order, TraceOp, TraceReport, Violation};
use crate::oracle::Label;
use stack2d::StackHandle;

/// A recorded single-threaded operation trace.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Stack2D, ConcurrentStack};
/// use stack2d_quality::trace::TraceRecorder;
///
/// let stack = Stack2D::new(Params::new(2, 1, 1).unwrap());
/// let mut rec = TraceRecorder::new(stack.handle());
/// rec.push();
/// rec.push();
/// rec.pop();
/// let trace = rec.finish();
/// assert_eq!(trace.len(), 3);
/// assert!(trace.verify_k(stack.k_bound()).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<SerOp>,
}

/// Serializable mirror of [`TraceOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum SerOp {
    /// A push of the given label.
    Push(Label),
    /// A pop that returned the given label.
    Pop(Label),
    /// A pop that observed the stack empty.
    PopEmpty,
}

impl Trace {
    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The trace as checker input.
    pub fn to_ops(&self) -> Vec<TraceOp> {
        self.ops
            .iter()
            .map(|op| match *op {
                SerOp::Push(l) => TraceOp::Push(l),
                SerOp::Pop(l) => TraceOp::Pop(l),
                SerOp::PopEmpty => TraceOp::PopEmpty,
            })
            .collect()
    }

    /// Verifies the trace against a k-out-of-order bound.
    ///
    /// # Errors
    ///
    /// The first [`Violation`] found.
    pub fn verify_k(&self, k: usize) -> Result<TraceReport, Violation> {
        check_k_out_of_order(&self.to_ops(), k)
    }

    /// The tightest bound this trace satisfies (binary search over the
    /// checker); `None` if the trace violates stack semantics at every k
    /// (e.g. pops an unknown label).
    pub fn tightest_k(&self) -> Option<usize> {
        let ops = self.to_ops();
        // The error distance is bounded by trace length.
        let mut hi = self.ops.len();
        check_k_out_of_order(&ops, hi).ok()?;
        let mut lo = 0usize;
        if check_k_out_of_order(&ops, 0).is_ok() {
            return Some(0);
        }
        // Invariant: lo fails, hi passes.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if check_k_out_of_order(&ops, mid).is_ok() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

/// Records operations performed through a wrapped stack handle.
#[derive(Debug)]
pub struct TraceRecorder<H> {
    handle: H,
    trace: Trace,
    next_label: Label,
}

impl<H: StackHandle<Label>> TraceRecorder<H> {
    /// Wraps `handle` with an empty trace.
    pub fn new(handle: H) -> Self {
        TraceRecorder { handle, trace: Trace::default(), next_label: 0 }
    }

    /// Pushes a fresh unique label and records it.
    pub fn push(&mut self) {
        let label = self.next_label;
        self.next_label += 1;
        self.handle.push(label);
        self.trace.ops.push(SerOp::Push(label));
    }

    /// Pops and records the outcome; returns the label if one was popped.
    pub fn pop(&mut self) -> Option<Label> {
        match self.handle.pop() {
            Some(l) => {
                self.trace.ops.push(SerOp::Pop(l));
                Some(l)
            }
            None => {
                self.trace.ops.push(SerOp::PopEmpty);
                None
            }
        }
    }

    /// Finishes recording, returning the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

/// Outcome of replaying a trace's *schedule* (its push/pop pattern) against
/// another stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Operations replayed.
    pub ops: usize,
    /// Pops that returned a different label than the original run.
    pub divergences: usize,
    /// Pops whose emptiness outcome differed.
    pub empty_mismatches: usize,
}

/// Replays the push/pop *schedule* of `trace` against `handle`, comparing
/// outcomes op by op. Relaxed stacks legitimately diverge in labels; strict
/// stacks replaying a strict trace must not.
pub fn replay<H: StackHandle<Label>>(trace: &Trace, handle: &mut H) -> ReplayOutcome {
    let mut out = ReplayOutcome::default();
    for op in &trace.ops {
        out.ops += 1;
        match *op {
            SerOp::Push(label) => handle.push(label),
            SerOp::Pop(expected) => match handle.pop() {
                Some(got) if got == expected => {}
                Some(_) => out.divergences += 1,
                None => out.empty_mismatches += 1,
            },
            SerOp::PopEmpty => {
                if handle.pop().is_some() {
                    out.empty_mismatches += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::{ConcurrentStack, Params, Stack2D};
    use stack2d_baselines::TreiberStack;

    fn record_on_treiber(plan: &[bool]) -> Trace {
        let stack: TreiberStack<Label> = TreiberStack::new();
        let mut rec = TraceRecorder::new(stack.handle());
        for &p in plan {
            if p {
                rec.push();
            } else {
                rec.pop();
            }
        }
        rec.finish()
    }

    #[test]
    fn strict_trace_has_tightest_k_zero() {
        let trace = record_on_treiber(&[true, true, false, false, false]);
        assert_eq!(trace.tightest_k(), Some(0));
        assert!(trace.verify_k(0).is_ok());
    }

    #[test]
    fn relaxed_trace_tightest_k_matches_checker() {
        let stack = Stack2D::new(Params::new(4, 2, 2).unwrap());
        let mut rec = TraceRecorder::new(stack.handle());
        for _ in 0..500 {
            rec.push();
        }
        for _ in 0..500 {
            rec.pop();
        }
        let trace = rec.finish();
        let k = trace.tightest_k().expect("trace must satisfy some k");
        assert!(k <= stack.k_bound(), "tightest k {k} above Theorem 1 bound");
        assert!(trace.verify_k(k).is_ok());
        if k > 0 {
            assert!(trace.verify_k(k - 1).is_err(), "k not tight");
        }
    }

    #[test]
    fn replay_of_strict_trace_on_strict_stack_is_exact() {
        let plan: Vec<bool> = (0..200).map(|i| i % 3 != 2).collect();
        let trace = record_on_treiber(&plan);
        let stack: TreiberStack<Label> = TreiberStack::new();
        let mut h = stack.handle();
        let out = replay(&trace, &mut h);
        assert_eq!(out.ops, trace.len());
        assert_eq!(out.divergences, 0);
        assert_eq!(out.empty_mismatches, 0);
    }

    #[test]
    fn replay_on_relaxed_stack_may_diverge_but_not_mismatch_empty() {
        let plan: Vec<bool> = (0..400).map(|i| i < 200).collect();
        let trace = record_on_treiber(&plan);
        let stack = Stack2D::new(Params::new(4, 2, 1).unwrap());
        let mut h = stack.handle();
        let out = replay(&trace, &mut h);
        // Same schedule, same residency: single-threaded emptiness agrees.
        assert_eq!(out.empty_mismatches, 0);
    }

    #[test]
    fn empty_trace_roundtrip() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.tightest_k(), Some(0));
    }

    #[test]
    fn pop_empty_is_recorded() {
        let trace = record_on_treiber(&[false]);
        assert_eq!(trace.to_ops(), vec![TraceOp::PopEmpty]);
    }
}
