//! k-relaxed linearizability checking for *concurrent* histories.
//!
//! Theorem 1 states the 2D-Stack is **linearizable with respect to
//! k-out-of-order stack semantics**. The trace checker
//! ([`crate::checker`]) verifies the bound on single-threaded runs; this
//! module verifies the full concurrent claim on small histories: it
//! records invocation/response intervals with a shared logical clock and
//! then searches for a legal linearization (Wing & Gong-style DFS with
//! memoization) under a stack specification relaxed by `k` — a pop may
//! remove any of the top `k + 1` items, `k = 0` being the strict stack.
//!
//! Exhaustive linearization search is exponential, so histories are
//! limited to 64 operations; the integration tests run many small random
//! concurrent histories per algorithm instead of one big one, which is
//! the standard testing regime for this class of checker.

use std::collections::HashSet;

use crate::oracle::Label;
use stack2d::StackHandle;

/// One completed operation with its observation interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recorded {
    /// Logical time of invocation.
    pub start: u64,
    /// Logical time of response.
    pub end: u64,
    /// What happened.
    pub op: HistOp,
}

/// The operation kinds of a stack history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistOp {
    /// A push of the given label.
    Push(Label),
    /// A pop that returned the given label.
    PopSome(Label),
    /// A pop that reported the stack empty.
    PopEmpty,
}

/// A complete concurrent history (all operations responded).
#[derive(Debug, Clone, Default)]
pub struct History {
    ops: Vec<Recorded>,
}

impl History {
    /// Builds a history from recorded operations.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 64 operations (the checker is
    /// exponential) or if any interval is inverted.
    pub fn new(ops: Vec<Recorded>) -> Self {
        assert!(ops.len() <= 64, "history too large for exhaustive checking");
        for r in &ops {
            assert!(r.start < r.end, "inverted interval {r:?}");
        }
        History { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the history is linearizable with respect to the
    /// k-out-of-order stack specification (`k = 0` = strict stack).
    ///
    /// Searches for an order of linearization points consistent with the
    /// real-time intervals in which every pop removes one of the top
    /// `k + 1` items and every empty pop happens on an empty stack.
    pub fn is_k_linearizable(&self, k: usize) -> bool {
        let n = self.ops.len();
        if n == 0 {
            return true;
        }
        let mut memo: HashSet<(u64, Vec<Label>)> = HashSet::new();
        let mut stack: Vec<Label> = Vec::new();
        self.dfs(0u64, &mut stack, k, &mut memo)
    }

    /// The smallest k for which the history linearizes, or `None` if no k
    /// works (a structural violation like popping a never-pushed label).
    pub fn tightest_k(&self) -> Option<usize> {
        let max_k = self.ops.len();
        if !self.is_k_linearizable(max_k) {
            return None;
        }
        // Linear scan is fine at history sizes <= 64; linearizability is
        // monotone in k so binary search would also work.
        (0..=max_k).find(|&k| self.is_k_linearizable(k))
    }

    fn dfs(
        &self,
        done: u64,
        stack: &mut Vec<Label>,
        k: usize,
        memo: &mut HashSet<(u64, Vec<Label>)>,
    ) -> bool {
        let n = self.ops.len();
        if done.count_ones() as usize == n {
            return true;
        }
        if !memo.insert((done, stack.clone())) {
            return false; // already explored this configuration
        }
        // An op may linearize next only if its invocation precedes the
        // response of every other pending op (Wing & Gong).
        let min_end = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, r)| r.end)
            .min()
            .expect("pending op exists");
        for i in 0..n {
            if done & (1 << i) != 0 {
                continue;
            }
            let r = self.ops[i];
            if r.start > min_end {
                continue;
            }
            match r.op {
                HistOp::Push(l) => {
                    stack.push(l);
                    if self.dfs(done | (1 << i), stack, k, memo) {
                        return true;
                    }
                    stack.pop();
                }
                HistOp::PopSome(l) => {
                    // The label must be within the top k+1 items.
                    let depth_limit = k + 1;
                    let top = stack.len();
                    let window_start = top.saturating_sub(depth_limit);
                    if let Some(pos) = (window_start..top).rev().find(|&p| stack[p] == l) {
                        let removed = stack.remove(pos);
                        if self.dfs(done | (1 << i), stack, k, memo) {
                            return true;
                        }
                        stack.insert(pos, removed);
                    }
                }
                HistOp::PopEmpty => {
                    if stack.is_empty() && self.dfs(done | (1 << i), stack, k, memo) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Records a concurrent history: per-thread recorders share a logical
/// clock and each wraps one stack handle.
///
/// # Examples
///
/// ```
/// use stack2d::{ConcurrentStack, Params, Stack2D};
/// use stack2d_quality::linearize::{HistoryRecorder, SharedClock};
///
/// let stack = Stack2D::new(Params::new(2, 1, 1).unwrap());
/// let clock = SharedClock::new();
/// let mut rec = HistoryRecorder::new(stack.handle(), &clock);
/// rec.push(1);
/// rec.pop();
/// let history = rec.finish();
/// assert!(history.is_k_linearizable(stack.k_bound()));
/// ```
#[derive(Debug, Default)]
pub struct SharedClock {
    t: stack2d::sync::atomic::AtomicU64,
}

impl SharedClock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn tick(&self) -> u64 {
        self.t.fetch_add(1, stack2d::sync::atomic::Ordering::SeqCst)
    }
}

/// Per-thread recording wrapper around a stack handle.
#[derive(Debug)]
pub struct HistoryRecorder<'c, H> {
    handle: H,
    clock: &'c SharedClock,
    ops: Vec<Recorded>,
}

impl<'c, H: StackHandle<Label>> HistoryRecorder<'c, H> {
    /// Wraps `handle`, timestamping against `clock`.
    pub fn new(handle: H, clock: &'c SharedClock) -> Self {
        HistoryRecorder { handle, clock, ops: Vec::new() }
    }

    /// Pushes `label`, recording the interval.
    pub fn push(&mut self, label: Label) {
        let start = self.clock.tick();
        self.handle.push(label);
        let end = self.clock.tick();
        self.ops.push(Recorded { start, end, op: HistOp::Push(label) });
    }

    /// Pops, recording the interval and outcome.
    pub fn pop(&mut self) -> Option<Label> {
        let start = self.clock.tick();
        let got = self.handle.pop();
        let end = self.clock.tick();
        let op = match got {
            Some(l) => HistOp::PopSome(l),
            None => HistOp::PopEmpty,
        };
        self.ops.push(Recorded { start, end, op });
        got
    }

    /// Finishes this thread's recording.
    pub fn finish(self) -> History {
        History::new(self.ops)
    }

    /// Extracts the raw operations (for merging across threads).
    pub fn into_ops(self) -> Vec<Recorded> {
        self.ops
    }
}

/// Merges per-thread recordings into one history.
pub fn merge_histories(parts: Vec<Vec<Recorded>>) -> History {
    History::new(parts.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(start: u64, end: u64, op: HistOp) -> Recorded {
        Recorded { start, end, op }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(History::default().is_k_linearizable(0));
    }

    #[test]
    fn sequential_strict_history_passes_k0() {
        let h = History::new(vec![
            op(0, 1, HistOp::Push(1)),
            op(2, 3, HistOp::Push(2)),
            op(4, 5, HistOp::PopSome(2)),
            op(6, 7, HistOp::PopSome(1)),
            op(8, 9, HistOp::PopEmpty),
        ]);
        assert!(h.is_k_linearizable(0));
        assert_eq!(h.tightest_k(), Some(0));
    }

    #[test]
    fn sequential_out_of_order_needs_k() {
        // push 1, push 2, pop -> 1 (strictly illegal, 1-out-of-order legal)
        let h = History::new(vec![
            op(0, 1, HistOp::Push(1)),
            op(2, 3, HistOp::Push(2)),
            op(4, 5, HistOp::PopSome(1)),
        ]);
        assert!(!h.is_k_linearizable(0));
        assert!(h.is_k_linearizable(1));
        assert_eq!(h.tightest_k(), Some(1));
    }

    #[test]
    fn overlap_allows_reordering() {
        // Two overlapping pushes then pops in "wrong" order: legal at k=0
        // because the pushes can linearize either way.
        let h = History::new(vec![
            op(0, 5, HistOp::Push(1)),
            op(1, 6, HistOp::Push(2)),
            op(7, 8, HistOp::PopSome(1)),
            op(9, 10, HistOp::PopSome(2)),
        ]);
        assert!(h.is_k_linearizable(0));
    }

    #[test]
    fn pop_before_push_is_never_linearizable() {
        // The pop responds before the push is invoked: no k helps.
        let h = History::new(vec![op(0, 1, HistOp::PopSome(1)), op(2, 3, HistOp::Push(1))]);
        assert!(!h.is_k_linearizable(0));
        assert!(!h.is_k_linearizable(10));
        assert_eq!(h.tightest_k(), None);
    }

    #[test]
    fn false_empty_is_rejected() {
        // A pop reports empty strictly between a completed push and its
        // pop: the stack cannot have been empty.
        let h = History::new(vec![
            op(0, 1, HistOp::Push(1)),
            op(2, 3, HistOp::PopEmpty),
            op(4, 5, HistOp::PopSome(1)),
        ]);
        assert!(!h.is_k_linearizable(0));
        assert!(!h.is_k_linearizable(5));
    }

    #[test]
    fn concurrent_empty_can_slip_between() {
        // The empty pop overlaps the push: it may linearize first.
        let h = History::new(vec![
            op(0, 4, HistOp::Push(1)),
            op(1, 3, HistOp::PopEmpty),
            op(5, 6, HistOp::PopSome(1)),
        ]);
        assert!(h.is_k_linearizable(0));
    }

    #[test]
    #[should_panic(expected = "history too large")]
    fn oversized_history_panics() {
        let ops = (0..65).map(|i| op(2 * i, 2 * i + 1, HistOp::Push(i))).collect();
        let _ = History::new(ops);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_panics() {
        let _ = History::new(vec![op(5, 2, HistOp::Push(1))]);
    }

    #[test]
    fn k_monotonicity() {
        // If a history linearizes at k it linearizes at every k' >= k.
        let h = History::new(vec![
            op(0, 1, HistOp::Push(1)),
            op(2, 3, HistOp::Push(2)),
            op(4, 5, HistOp::Push(3)),
            op(6, 7, HistOp::PopSome(1)),
        ]);
        let t = h.tightest_k().unwrap();
        assert_eq!(t, 2);
        for k in t..6 {
            assert!(h.is_k_linearizable(k), "monotonicity broken at k={k}");
        }
    }
}
