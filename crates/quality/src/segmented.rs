//! Per-generation quality verification for elastic (retuned) stacks.
//!
//! The static checkers verify one k-bound over a whole run. Under online
//! retuning the bound *changes mid-run*: each descriptor swing starts a new
//! **generation segment**, and the property to verify becomes "every pop's
//! error distance is within the bound that was in force when the pop
//! linearized". This module provides both halves:
//!
//! * [`MeasuredElastic`] — the paper's oracle-coupled measurement wrapper
//!   ([`MeasuredStack`](crate::oracle::MeasuredStack)) extended for elastic
//!   stacks: every pop records its error distance *and* the window
//!   generation observed immediately before and after the pop. The pop
//!   linearized somewhere between the two observations, so the bound in
//!   force was one of the generations in `[gen_lo, gen_hi]`.
//! * [`check_segments`] — verifies each record against a caller-supplied
//!   `generation -> k_bound` map (built from the initial window plus the
//!   controller's retune log), taking the *maximum* bound over the
//!   record's generation range — the tightest claim that is sound without
//!   knowing the exact linearization point.

use std::collections::BTreeMap;
use std::fmt;

use stack2d::sync::Mutex;

use crate::oracle::{Label, Oracle};
use stack2d::{Handle2D, Stack2D, WindowInfo};

/// One measured pop under an elastic stack: its error distance, the
/// window generations bracketing it, the live residency bound, and the
/// popped item's push-side staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRecord {
    /// Error distance reported by the oracle.
    pub distance: u32,
    /// Window generation observed just before the pop.
    pub gen_lo: u64,
    /// Window generation observed just after the pop (>= `gen_lo`).
    pub gen_hi: u64,
    /// [`Stack2D::k_bound_instantaneous`] observed around the pop — the
    /// residency-derived bound that stays sound through retune transients
    /// (a width grow lets items resident at the swing exceed the static
    /// formula until they drain; see DESIGN.md §6).
    pub live_bound: usize,
    /// Push-side staleness: how many window generations the item survived
    /// between its push and this pop (`gen_lo` minus the generation
    /// observed at push time). The pop-side bound says how far *below the
    /// top* a pop may land; this measures the dual — how long an item can
    /// linger while siblings turn over across retunes.
    pub age: u64,
}

/// A violation found by [`check_segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentViolation {
    /// A pop's distance exceeded every bound in force across its
    /// generation range.
    OutOfBound {
        /// Index of the offending record.
        index: usize,
        /// The measured distance.
        distance: u32,
        /// The (maximal) bound in force.
        bound: usize,
        /// Generation observed before the pop.
        gen_lo: u64,
        /// Generation observed after the pop.
        gen_hi: u64,
    },
    /// The bounds map has no entry at or below a record's `gen_lo`.
    MissingBound {
        /// Index of the offending record.
        index: usize,
        /// The generation with no known bound.
        generation: u64,
    },
}

impl fmt::Display for SegmentViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SegmentViolation::OutOfBound { index, distance, bound, gen_lo, gen_hi } => write!(
                f,
                "record {index}: distance {distance} exceeds bound {bound} in force over \
                 generations {gen_lo}..={gen_hi}"
            ),
            SegmentViolation::MissingBound { index, generation } => {
                write!(f, "record {index}: no bound known at or below generation {generation}")
            }
        }
    }
}

impl std::error::Error for SegmentViolation {}

/// Per-generation summary produced by a successful [`check_segments`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Pops attributed to this generation (by their `gen_lo`).
    pub pops: usize,
    /// Largest distance observed.
    pub max_distance: u32,
    /// The configured bound of this generation (from the bounds map).
    pub bound: usize,
    /// Pops whose distance exceeded the configured bound and were covered
    /// by the live residency bound instead (retune transients).
    pub transients: usize,
    /// Push-side staleness: the largest [`SegRecord::age`] among items
    /// popped in this generation — the most generations any surviving
    /// item weathered before surfacing here.
    pub max_age: u64,
}

/// Result of a successful segment check: headline numbers plus a
/// per-generation breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentReport {
    /// Total pops checked.
    pub pops: usize,
    /// Largest distance observed anywhere.
    pub max_distance: u32,
    /// Largest push-side staleness (in generations) observed anywhere.
    pub max_age: u64,
    /// Per-generation statistics, keyed by `gen_lo`.
    pub segments: BTreeMap<u64, SegmentStats>,
}

/// The bound in force over `[gen_lo, gen_hi]`: the maximum mapped bound
/// among the floor entry at-or-below `gen_lo` and every entry inside the
/// range. `None` when no entry exists at or below `gen_lo`.
fn bound_over(bounds: &BTreeMap<u64, usize>, gen_lo: u64, gen_hi: u64) -> Option<usize> {
    let floor = bounds.range(..=gen_lo).next_back().map(|(_, &b)| b)?;
    let inside = if gen_hi > gen_lo {
        bounds.range(gen_lo + 1..=gen_hi).map(|(_, &b)| b).max()
    } else {
        None
    };
    Some(inside.map_or(floor, |m| m.max(floor)))
}

/// Verifies every record's distance against the instantaneous bound of
/// its generation range: the **maximum** of the configured bound in force
/// across `[gen_lo, gen_hi]` and the record's live residency bound.
///
/// The configured bound is the steady-state guarantee; the live bound
/// ([`SegRecord::live_bound`]) covers retune transients, where items
/// resident at a width-grow legitimately exceed the static formula until
/// they drain (DESIGN.md §6). Pops needing the live bound are tallied as
/// `transients` per segment, so reports make the transient volume visible
/// instead of hiding it.
///
/// `bounds` maps each generation to the configured `k_bound` of the
/// descriptor that took effect there — generation 0 (the initial window)
/// plus one entry per retune/commit event ([`bounds_map`]). Gaps are
/// filled with the nearest bound at a lower generation.
///
/// Alongside the pop-side bound check, the report aggregates the **push
/// side**: each record's [`SegRecord::age`] (generations survived between
/// push and pop) rolls up into per-generation and global `max_age` — the
/// tightness analysis of how *stale* a surviving item can get while the
/// window retunes around it. Staleness is reported, not checked: no finite
/// bound on it exists (an item parked in a sub-structure below every later
/// window survives arbitrarily many generations), which is exactly why the
/// number is worth surfacing next to the bounded distances.
///
/// # Errors
///
/// The first [`SegmentViolation`] found.
///
/// # Examples
///
/// ```
/// use std::collections::BTreeMap;
/// use stack2d_quality::segmented::{check_segments, SegRecord};
///
/// let bounds = BTreeMap::from([(0, 9), (1, 93)]);
/// let records = [
///     SegRecord { distance: 9, gen_lo: 0, gen_hi: 0, live_bound: 0, age: 0 },
///     // Linearized across the retune: the wide bound applies.
///     SegRecord { distance: 40, gen_lo: 0, gen_hi: 1, live_bound: 0, age: 0 },
///     // Pushed at generation 0, popped at 1: one generation stale.
///     SegRecord { distance: 93, gen_lo: 1, gen_hi: 1, live_bound: 0, age: 1 },
/// ];
/// let report = check_segments(&records, &bounds).unwrap();
/// assert_eq!(report.pops, 3);
/// assert_eq!(report.max_distance, 93);
/// assert_eq!(report.max_age, 1);
/// let out_of_bound = SegRecord { distance: 10, gen_lo: 0, gen_hi: 0, live_bound: 0, age: 0 };
/// assert!(check_segments(&[out_of_bound], &bounds).is_err());
/// ```
pub fn check_segments(
    records: &[SegRecord],
    bounds: &BTreeMap<u64, usize>,
) -> Result<SegmentReport, SegmentViolation> {
    let mut report = SegmentReport::default();
    for (index, r) in records.iter().enumerate() {
        let configured = bound_over(bounds, r.gen_lo, r.gen_hi)
            .ok_or(SegmentViolation::MissingBound { index, generation: r.gen_lo })?;
        let bound = configured.max(r.live_bound);
        if r.distance as usize > bound {
            return Err(SegmentViolation::OutOfBound {
                index,
                distance: r.distance,
                bound,
                gen_lo: r.gen_lo,
                gen_hi: r.gen_hi,
            });
        }
        report.pops += 1;
        report.max_distance = report.max_distance.max(r.distance);
        report.max_age = report.max_age.max(r.age);
        let seg = report.segments.entry(r.gen_lo).or_default();
        seg.pops += 1;
        seg.max_distance = seg.max_distance.max(r.distance);
        seg.bound = seg.bound.max(configured);
        seg.max_age = seg.max_age.max(r.age);
        if r.distance as usize > configured {
            seg.transients += 1;
        }
    }
    Ok(report)
}

/// Builds the `generation -> k_bound` map [`check_segments`] consumes from
/// the initial window plus an iterator of `(generation, k_bound)` pairs
/// (e.g. the adaptive crate's retune events).
pub fn bounds_map(
    initial: WindowInfo,
    events: impl IntoIterator<Item = (u64, usize)>,
) -> BTreeMap<u64, usize> {
    let mut map = BTreeMap::from([(initial.generation(), initial.k_bound())]);
    for (generation, k_bound) in events {
        map.insert(generation, k_bound);
    }
    map
}

/// An elastic [`Stack2D`] of labels coupled with the error-distance oracle
/// under one mutex — [`MeasuredStack`](crate::oracle::MeasuredStack)
/// extended with generation bracketing, so dynamic relaxation stays
/// verifiable.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Stack2D};
/// use stack2d_quality::segmented::{bounds_map, check_segments, MeasuredElastic};
///
/// let stack = Stack2D::builder().params(Params::new(2, 1, 1).unwrap()).elastic_capacity(8).build().unwrap();
/// let initial = stack.window();
/// let measured = MeasuredElastic::new(&stack);
/// let mut h = measured.handle();
/// for _ in 0..100 {
///     h.push();
/// }
/// let grown = stack.retune(Params::new(8, 1, 1).unwrap()).unwrap();
/// for _ in 0..100 {
///     h.pop();
/// }
/// let bounds = bounds_map(initial, [(grown.generation(), grown.k_bound())]);
/// let report = check_segments(&measured.take_records(), &bounds).unwrap();
/// assert_eq!(report.pops, 100);
/// ```
pub struct MeasuredElastic<'s> {
    stack: &'s Stack2D<Label>,
    inner: Mutex<MeasuredInner>,
}

struct MeasuredInner {
    oracle: Oracle,
    records: Vec<SegRecord>,
    next_label: Label,
    /// Window generation observed when each live label was pushed — the
    /// push side of the staleness analysis ([`SegRecord::age`]).
    push_gen: std::collections::HashMap<Label, u64>,
}

impl<'s> MeasuredElastic<'s> {
    /// Wraps `stack` for measured elastic runs.
    pub fn new(stack: &'s Stack2D<Label>) -> Self {
        MeasuredElastic {
            stack,
            inner: Mutex::new(MeasuredInner {
                oracle: Oracle::new(),
                records: Vec::new(),
                next_label: 0,
                push_gen: std::collections::HashMap::new(),
            }),
        }
    }

    /// The wrapped stack.
    pub fn stack(&self) -> &'s Stack2D<Label> {
        self.stack
    }

    /// Registers a measuring handle for the calling thread.
    pub fn handle(&self) -> MeasuredElasticHandle<'_, 's> {
        MeasuredElasticHandle { measured: self, inner: self.stack.handle() }
    }

    /// Registers a measuring handle with a deterministic RNG seed.
    pub fn handle_seeded(&self, seed: u64) -> MeasuredElasticHandle<'_, 's> {
        MeasuredElasticHandle { measured: self, inner: self.stack.handle_seeded(seed) }
    }

    /// Pre-fills the stack with `n` labelled items.
    pub fn prefill(&self, n: usize) {
        let mut h = self.handle();
        for _ in 0..n {
            h.push();
        }
    }

    /// Extracts the recorded pops, resetting the accumulator.
    pub fn take_records(&self) -> Vec<SegRecord> {
        core::mem::take(&mut self.inner.lock().records)
    }

    /// Number of items the oracle currently believes live.
    pub fn oracle_len(&self) -> usize {
        self.inner.lock().oracle.len()
    }
}

impl fmt::Debug for MeasuredElastic<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeasuredElastic").field("stack", &self.stack).finish()
    }
}

/// Per-thread handle performing simultaneous stack + oracle operations
/// with generation bracketing.
pub struct MeasuredElasticHandle<'m, 's> {
    measured: &'m MeasuredElastic<'s>,
    inner: Handle2D<'s, Label>,
}

impl MeasuredElasticHandle<'_, '_> {
    /// Pushes a fresh unique label, remembering the window generation it
    /// was pushed under (the push side of the staleness analysis).
    pub fn push(&mut self) {
        let mut g = self.measured.inner.lock();
        let label = g.next_label;
        g.next_label += 1;
        // Sample the generation *before* the push: a retune racing the
        // push then over-counts the item's age by one, which is the safe
        // direction for a reported maximum (sampling after would
        // under-count it).
        let generation = self.measured.stack.window().generation();
        self.inner.push(label);
        g.oracle.insert(label);
        g.push_gen.insert(label, generation);
    }

    /// Pops a label, recording its error distance together with the
    /// window generations and live residency bound observed around the
    /// pop, plus the item's push-side staleness; returns whether an item
    /// was obtained.
    pub fn pop(&mut self) -> bool {
        let mut g = self.measured.inner.lock();
        let stack = self.measured.stack;
        let gen_lo = stack.window().generation();
        let live_before = stack.k_bound_instantaneous();
        match self.inner.pop() {
            Some(label) => {
                let gen_hi = stack.window().generation();
                let live_bound = live_before.max(stack.k_bound_instantaneous());
                let distance =
                    g.oracle.delete(label).expect("popped label must be live in the oracle");
                let pushed_at =
                    g.push_gen.remove(&label).expect("popped label must have a push record");
                let age = gen_lo.saturating_sub(pushed_at);
                g.records.push(SegRecord { distance, gen_lo, gen_hi, live_bound, age });
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::Params;

    fn p(w: usize, d: usize, s: usize) -> Params {
        Params::new(w, d, s).unwrap()
    }

    #[test]
    fn bound_over_uses_floor_and_range_max() {
        let bounds = BTreeMap::from([(0u64, 9usize), (3, 93), (5, 0)]);
        assert_eq!(bound_over(&bounds, 0, 0), Some(9));
        assert_eq!(bound_over(&bounds, 1, 2), Some(9)); // gap: floor at 0
        assert_eq!(bound_over(&bounds, 2, 3), Some(93)); // crosses the widen
        assert_eq!(bound_over(&bounds, 5, 5), Some(0));
        assert_eq!(bound_over(&bounds, 4, 6), Some(93)); // max over range
    }

    #[test]
    fn missing_floor_is_reported() {
        let bounds = BTreeMap::from([(4u64, 9usize)]);
        let rec = SegRecord { distance: 0, gen_lo: 2, gen_hi: 2, live_bound: 0, age: 0 };
        let err = check_segments(&[rec], &bounds).unwrap_err();
        assert_eq!(err, SegmentViolation::MissingBound { index: 0, generation: 2 });
    }

    #[test]
    fn report_groups_by_generation() {
        let bounds = BTreeMap::from([(0u64, 10usize), (1, 50)]);
        let records = [
            SegRecord { distance: 4, gen_lo: 0, gen_hi: 0, live_bound: 0, age: 0 },
            SegRecord { distance: 7, gen_lo: 0, gen_hi: 1, live_bound: 0, age: 0 },
            SegRecord { distance: 33, gen_lo: 1, gen_hi: 1, live_bound: 0, age: 1 },
        ];
        let report = check_segments(&records, &bounds).unwrap();
        assert_eq!(report.pops, 3);
        assert_eq!(report.max_distance, 33);
        assert_eq!(report.segments[&0].pops, 2);
        assert_eq!(report.segments[&1].max_distance, 33);
        assert_eq!(report.segments[&1].bound, 50);
        assert_eq!(report.segments[&1].transients, 0);
    }

    #[test]
    fn live_bound_covers_transients_and_is_tallied() {
        let bounds = BTreeMap::from([(0u64, 10usize)]);
        // Distance beyond the configured bound but within the residency
        // bound observed at the pop: a retune transient, not a violation.
        let transient = SegRecord { distance: 40, gen_lo: 0, gen_hi: 0, live_bound: 64, age: 0 };
        let report = check_segments(&[transient], &bounds).unwrap();
        assert_eq!(report.segments[&0].transients, 1);
        // Beyond both bounds: a real violation.
        let bad = SegRecord { distance: 99, gen_lo: 0, gen_hi: 0, live_bound: 64, age: 0 };
        let err = check_segments(&[bad], &bounds).unwrap_err();
        assert!(matches!(err, SegmentViolation::OutOfBound { bound: 64, .. }), "{err}");
    }

    #[test]
    fn violation_display_is_informative() {
        let v =
            SegmentViolation::OutOfBound { index: 3, distance: 11, bound: 9, gen_lo: 1, gen_hi: 2 };
        let s = v.to_string();
        assert!(s.contains("11") && s.contains("9") && s.contains("1..=2"));
    }

    #[test]
    fn measured_elastic_strict_stack_is_exact_per_segment() {
        // width 1 => k = 0 in every generation; distances must all be 0.
        let stack = Stack2D::builder().params(p(1, 1, 1)).elastic_capacity(4).build().unwrap();
        let initial = stack.window();
        let measured = MeasuredElastic::new(&stack);
        let mut h = measured.handle();
        for _ in 0..50 {
            h.push();
        }
        let e1 = stack.retune(p(1, 3, 2)).unwrap(); // vertical retune, still width 1
        for _ in 0..50 {
            assert!(h.pop());
        }
        let bounds = bounds_map(initial, [(e1.generation(), e1.k_bound())]);
        let report = check_segments(&measured.take_records(), &bounds).unwrap();
        assert_eq!(report.pops, 50);
        assert_eq!(report.max_distance, 0, "width-1 segments must be strict");
    }

    #[test]
    fn measured_elastic_single_thread_respects_segment_bounds() {
        let stack = Stack2D::builder().params(p(2, 1, 1)).elastic_capacity(16).build().unwrap();
        let initial = stack.window();
        let measured = MeasuredElastic::new(&stack);
        let mut events = Vec::new();
        let mut h = measured.handle();
        for round in 0..4 {
            for _ in 0..200 {
                h.push();
            }
            for _ in 0..150 {
                h.pop();
            }
            let width = [16, 4, 8, 2][round];
            let info = stack.retune(p(width, 1, 1)).unwrap();
            events.push((info.generation(), info.k_bound()));
            if let Some(info) = stack.try_commit_shrink() {
                events.push((info.generation(), info.k_bound()));
            }
        }
        while h.pop() {}
        let bounds = bounds_map(initial, events);
        let report = check_segments(&measured.take_records(), &bounds).unwrap();
        assert_eq!(report.pops, 800);
        assert_eq!(measured.oracle_len(), 0);
        assert!(report.segments.len() > 1, "multiple generations must appear");
    }

    #[test]
    fn push_side_staleness_counts_survived_generations() {
        // Items pushed at generation 0 survive three vertical retunes
        // before being popped: their age must reflect every swing.
        let stack = Stack2D::builder().params(p(1, 1, 1)).elastic_capacity(4).build().unwrap();
        let initial = stack.window();
        let measured = MeasuredElastic::new(&stack);
        let mut h = measured.handle();
        for _ in 0..10 {
            h.push();
        }
        let mut events = Vec::new();
        for depth in [2, 3, 4] {
            let info = stack.retune(p(1, depth, 1)).unwrap();
            events.push((info.generation(), info.k_bound()));
        }
        // Fresh pushes at the latest generation have age 0 when popped now.
        for _ in 0..5 {
            h.push();
        }
        while h.pop() {}
        let bounds = bounds_map(initial, events);
        let report = check_segments(&measured.take_records(), &bounds).unwrap();
        assert_eq!(report.pops, 15);
        assert_eq!(report.max_age, 3, "gen-0 survivors weathered three retunes");
        // All pops happened in the final generation; its segment carries
        // both the stale veterans and the fresh age-0 items.
        let seg = report.segments[&3];
        assert_eq!(seg.max_age, 3);
        assert_eq!(seg.pops, 15);
    }

    #[test]
    fn fresh_items_have_zero_age() {
        let stack = Stack2D::builder().params(p(2, 1, 1)).elastic_capacity(4).build().unwrap();
        let initial = stack.window();
        let measured = MeasuredElastic::new(&stack);
        let mut h = measured.handle();
        for _ in 0..50 {
            h.push();
        }
        while h.pop() {}
        let report = check_segments(&measured.take_records(), &bounds_map(initial, [])).unwrap();
        assert_eq!(report.max_age, 0, "no retune happened: nothing can be stale");
    }

    #[test]
    fn oracle_and_stack_agree_on_residency() {
        let stack = Stack2D::builder().params(p(4, 2, 1)).elastic_capacity(8).build().unwrap();
        let measured = MeasuredElastic::new(&stack);
        measured.prefill(100);
        let mut h = measured.handle();
        for _ in 0..30 {
            h.pop();
        }
        assert_eq!(measured.oracle_len(), 70);
        assert_eq!(stack.len(), 70);
    }
}
