//! The error-distance oracle — the paper's quality-measurement method (§4).
//!
//! *"A sequential linked list is run alongside the stack; for each Push or
//! Pop a simultaneous insert or delete is performed on the list. ... the
//! delete operation searches for the given item, deletes it and returns its
//! distance from the head (error distance)."*
//!
//! [`Oracle`] is that list. Items are identified by unique labels; an insert
//! places the label at the head, a delete reports the label's rank from the
//! head. Internally the list is an order-statistics structure (a Fenwick
//! tree over insertion sequence numbers — head-inserts give newer items
//! higher sequence numbers, so *rank from head = number of live labels with
//! a higher sequence number*), giving O(log n) deletes instead of the O(n)
//! scan of a literal list. [`NaiveOracle`] is the literal list, kept as the
//! cross-check implementation for property tests.
//!
//! [`MeasuredStack`] couples any [`ConcurrentStack`] with an oracle under a
//! single mutex, exactly reproducing the paper's "simultaneous" update
//! semantics. Quality runs are therefore partially serialized — as they are
//! in the paper's methodology (quality and throughput are separate
//! experiments; see DESIGN.md §3).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::fenwick::Fenwick;
use crate::stats::ErrorStats;
use stack2d::{ConcurrentStack, StackHandle};

/// Unique item label used by the measurement runs.
pub type Label = u64;

/// Order-statistics implementation of the paper's sequential side list.
///
/// # Examples
///
/// ```
/// use stack2d_quality::oracle::Oracle;
///
/// let mut o = Oracle::new();
/// o.insert(10);
/// o.insert(11);
/// // 11 is at the head: distance 0. 10 is one below: distance 1.
/// assert_eq!(o.delete(10), Some(1));
/// assert_eq!(o.delete(11), Some(0));
/// assert_eq!(o.delete(12), None);
/// ```
#[derive(Debug, Default)]
pub struct Oracle {
    /// Live labels → insertion sequence number.
    seq_of: HashMap<Label, usize>,
    /// 1 at every live sequence number.
    live: Fenwick,
    next_seq: usize,
}

impl Oracle {
    /// Creates an empty oracle list.
    pub fn new() -> Self {
        Oracle { seq_of: HashMap::new(), live: Fenwick::new(), next_seq: 0 }
    }

    /// Inserts `label` at the head of the list.
    ///
    /// # Panics
    ///
    /// Panics if `label` is already live (labels must be unique).
    pub fn insert(&mut self, label: Label) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.seq_of.insert(label, seq);
        assert!(prev.is_none(), "label {label} inserted twice");
        self.live.add(seq, 1);
    }

    /// Deletes `label`, returning its distance from the head (0 = it *was*
    /// the head, i.e. a perfectly strict pop), or `None` if the label is not
    /// live.
    pub fn delete(&mut self, label: Label) -> Option<u32> {
        let seq = self.seq_of.remove(&label)?;
        // Rank from head = live items inserted more recently than `label`.
        let rank = self.live.count_above(seq);
        self.live.add(seq, -1);
        Some(rank as u32)
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.seq_of.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.seq_of.is_empty()
    }
}

/// Literal linked-list oracle (a `Vec` with head at the back): O(n) deletes.
///
/// Exists to cross-validate [`Oracle`] in tests; behaviourally identical.
#[derive(Debug, Default)]
pub struct NaiveOracle {
    /// Head is the last element.
    items: Vec<Label>,
}

impl NaiveOracle {
    /// Creates an empty list.
    pub fn new() -> Self {
        NaiveOracle { items: Vec::new() }
    }

    /// Inserts `label` at the head.
    pub fn insert(&mut self, label: Label) {
        self.items.push(label);
    }

    /// Deletes `label`, returning its distance from the head.
    pub fn delete(&mut self, label: Label) -> Option<u32> {
        let pos_from_back = self.items.iter().rev().position(|&l| l == label)?;
        let idx = self.items.len() - 1 - pos_from_back;
        self.items.remove(idx);
        Some(pos_from_back as u32)
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A [`ConcurrentStack`] of labels coupled with an [`Oracle`] under one
/// mutex — the paper's instrumented quality-measurement configuration.
///
/// `push()` pushes a fresh unique label and inserts it into the oracle;
/// `pop()` pops a label and records its error distance. Use
/// [`MeasuredStack::take_stats`] after the run.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Stack2D};
/// use stack2d_quality::oracle::MeasuredStack;
///
/// let stack = Stack2D::new(Params::new(2, 1, 1).unwrap());
/// let measured = MeasuredStack::new(&stack);
/// let mut h = measured.handle();
/// h.push();
/// h.push();
/// assert!(h.pop());
/// let stats = measured.take_stats();
/// assert_eq!(stats.len(), 1);
/// ```
pub struct MeasuredStack<'s, S> {
    stack: &'s S,
    inner: Mutex<MeasuredInner>,
}

struct MeasuredInner {
    oracle: Oracle,
    stats: ErrorStats,
    next_label: Label,
}

impl<'s, S: ConcurrentStack<Label>> MeasuredStack<'s, S> {
    /// Wraps `stack` for measured runs.
    pub fn new(stack: &'s S) -> Self {
        MeasuredStack {
            stack,
            inner: Mutex::new(MeasuredInner {
                oracle: Oracle::new(),
                stats: ErrorStats::new(),
                next_label: 0,
            }),
        }
    }

    /// The wrapped stack.
    pub fn stack(&self) -> &'s S {
        self.stack
    }

    /// Registers a measuring handle for the calling thread.
    pub fn handle(&self) -> MeasuredHandle<'_, 's, S> {
        MeasuredHandle { measured: self, inner: self.stack.handle() }
    }

    /// Registers a measuring handle with a deterministic RNG seed —
    /// the trait-level [`ConcurrentStack::handle_seeded`] makes this work
    /// for every algorithm without special-casing concrete types.
    pub fn handle_seeded(&self, seed: u64) -> MeasuredHandle<'_, 's, S> {
        MeasuredHandle { measured: self, inner: self.stack.handle_seeded(seed) }
    }

    /// Pre-fills the stack with `n` labelled items (the paper initializes
    /// every experiment with 32,768 items).
    pub fn prefill(&self, n: usize) {
        let mut h = self.handle();
        for _ in 0..n {
            h.push();
        }
    }

    /// Extracts the recorded error distances, resetting the accumulator.
    pub fn take_stats(&self) -> ErrorStats {
        core::mem::take(&mut self.inner.lock().stats)
    }

    /// Number of items the oracle currently believes live.
    pub fn oracle_len(&self) -> usize {
        self.inner.lock().oracle.len()
    }
}

impl<S: core::fmt::Debug> core::fmt::Debug for MeasuredStack<'_, S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MeasuredStack").field("stack", &self.stack).finish()
    }
}

/// Per-thread handle performing simultaneous stack + oracle operations.
pub struct MeasuredHandle<'m, 's, S: ConcurrentStack<Label>> {
    measured: &'m MeasuredStack<'s, S>,
    inner: S::Handle<'s>,
}

impl<S: ConcurrentStack<Label>> MeasuredHandle<'_, '_, S> {
    /// Pushes a fresh unique label (stack and oracle updated atomically
    /// with respect to other measured operations).
    pub fn push(&mut self) {
        let mut g = self.measured.inner.lock();
        let label = g.next_label;
        g.next_label += 1;
        self.inner.push(label);
        g.oracle.insert(label);
    }

    /// Pops a label and records its error distance; returns whether an item
    /// was obtained.
    pub fn pop(&mut self) -> bool {
        let mut g = self.measured.inner.lock();
        match self.inner.pop() {
            Some(label) => {
                let dist = g.oracle.delete(label).expect("popped label must be live in the oracle");
                g.stats.record(dist);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d_baselines::{LockedStack, TreiberStack};

    #[test]
    fn oracle_strict_lifo_has_zero_distance() {
        let mut o = Oracle::new();
        for l in 0..100 {
            o.insert(l);
        }
        for l in (0..100).rev() {
            assert_eq!(o.delete(l), Some(0), "strict LIFO pops are always at the head");
        }
        assert!(o.is_empty());
    }

    #[test]
    fn oracle_fifo_has_maximal_distance() {
        let mut o = Oracle::new();
        for l in 0..10 {
            o.insert(l);
        }
        // FIFO removal: item 0 sits at distance 9, then 8, ...
        for (i, l) in (0..10).enumerate() {
            assert_eq!(o.delete(l), Some((9 - i) as u32));
        }
    }

    #[test]
    fn oracle_delete_unknown_is_none() {
        let mut o = Oracle::new();
        o.insert(1);
        assert_eq!(o.delete(99), None);
        assert_eq!(o.len(), 1);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn oracle_duplicate_insert_panics() {
        let mut o = Oracle::new();
        o.insert(1);
        o.insert(1);
    }

    #[test]
    fn naive_and_fenwick_oracles_agree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut fast = Oracle::new();
        let mut naive = NaiveOracle::new();
        let mut live: Vec<Label> = Vec::new();
        let mut next = 0;
        for _ in 0..5_000 {
            if live.is_empty() || rng.random_bool(0.55) {
                fast.insert(next);
                naive.insert(next);
                live.push(next);
                next += 1;
            } else {
                let idx = rng.random_range(0..live.len());
                let label = live.swap_remove(idx);
                assert_eq!(fast.delete(label), naive.delete(label), "label {label}");
            }
            assert_eq!(fast.len(), naive.len());
        }
    }

    #[test]
    fn measured_treiber_is_always_exact() {
        let stack = TreiberStack::new();
        let measured = MeasuredStack::new(&stack);
        let mut h = measured.handle();
        for _ in 0..500 {
            h.push();
        }
        for _ in 0..500 {
            assert!(h.pop());
        }
        let stats = measured.take_stats();
        assert_eq!(stats.len(), 500);
        assert_eq!(stats.max(), 0, "a strict stack must have zero error distance");
    }

    #[test]
    fn measured_concurrent_run_keeps_oracle_consistent() {
        let stack = LockedStack::new();
        let measured = MeasuredStack::new(&stack);
        measured.prefill(100);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &measured;
                s.spawn(move || {
                    let mut h = m.handle();
                    for i in 0..1_000 {
                        if i % 2 == 0 {
                            h.push();
                        } else {
                            h.pop();
                        }
                    }
                });
            }
        });
        // Oracle and stack agree on residency.
        assert_eq!(measured.oracle_len(), stack.len());
    }

    #[test]
    fn measured_pop_on_empty_records_nothing() {
        let stack: TreiberStack<Label> = TreiberStack::new();
        let measured = MeasuredStack::new(&stack);
        let mut h = measured.handle();
        assert!(!h.pop());
        assert!(measured.take_stats().is_empty());
    }

    #[test]
    fn take_stats_resets() {
        let stack = TreiberStack::new();
        let measured = MeasuredStack::new(&stack);
        let mut h = measured.handle();
        h.push();
        h.pop();
        assert_eq!(measured.take_stats().len(), 1);
        assert_eq!(measured.take_stats().len(), 0);
    }
}
