//! Aggregation of per-pop error distances into the quantities the paper
//! plots: the *expected* (mean) error distance, plus max and percentiles.

use serde::{Deserialize, Serialize};

/// Accumulator of error-distance samples.
///
/// Stores the raw samples (one per pop) so that mean, max and percentiles
/// can all be reported; a five-second run produces at most a few tens of
/// millions of `u32`s, well within memory on any eval machine.
///
/// # Examples
///
/// ```
/// use stack2d_quality::stats::ErrorStats;
///
/// let mut s = ErrorStats::new();
/// for d in [0, 1, 2, 3] {
///     s.record(d);
/// }
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.mean(), 1.5);
/// assert_eq!(s.max(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    samples: Vec<u32>,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        ErrorStats { samples: Vec::new() }
    }

    /// Records one pop's error distance.
    pub fn record(&mut self, distance: u32) {
        self.samples.push(distance);
    }

    /// Merges another accumulator's samples (used to combine per-thread
    /// recorders and per-repeat runs).
    pub fn merge(&mut self, other: &ErrorStats) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean error distance — the paper's headline quality metric
    /// ("we then calculate the expected error distance"). Zero when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&d| d as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest observed error distance. Zero when empty.
    pub fn max(&self) -> u32 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// The `q`-quantile (0.0 ..= 1.0) by nearest-rank. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank]
    }

    /// Fraction of pops that were perfectly in order (distance 0).
    pub fn exact_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&d| d == 0).count() as f64 / self.samples.len() as f64
    }

    /// Collapses into a compact summary for reports.
    pub fn summary(&self) -> ErrorSummary {
        ErrorSummary {
            pops: self.len() as u64,
            mean: self.mean(),
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Compact error-distance summary carried in experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of value-returning pops measured.
    pub pops: u64,
    /// Mean error distance.
    pub mean: f64,
    /// Median error distance.
    pub p50: u32,
    /// 99th percentile error distance.
    pub p99: u32,
    /// Maximum error distance.
    pub max: u32,
}

impl core::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mean={:.2} p50={} p99={} max={} (n={})",
            self.mean, self.p50, self.p99, self.max, self.pops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = ErrorStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.exact_fraction(), 0.0);
    }

    #[test]
    fn mean_and_max() {
        let mut s = ErrorStats::new();
        for d in [5, 0, 10, 1] {
            s.record(d);
        }
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.max(), 10);
        assert_eq!(s.exact_fraction(), 0.25);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = ErrorStats::new();
        for d in 0..100 {
            s.record(d);
        }
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 99);
        assert_eq!(s.quantile(0.5), 50);
        assert_eq!(s.quantile(0.99), 98);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_out_of_range_panics() {
        let mut s = ErrorStats::new();
        s.record(1);
        s.quantile(1.5);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = ErrorStats::new();
        a.record(1);
        let mut b = ErrorStats::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn summary_aggregates_correctly() {
        let mut s = ErrorStats::new();
        for d in [0, 2, 4, 6, 8] {
            s.record(d);
        }
        let sum = s.summary();
        assert_eq!(sum.pops, 5);
        assert_eq!(sum.mean, 4.0);
        assert_eq!(sum.p50, 4);
        assert_eq!(sum.max, 8);
    }

    #[test]
    fn summary_display_mentions_fields() {
        let mut s = ErrorStats::new();
        s.record(7);
        let text = s.summary().to_string();
        assert!(text.contains("mean=7.00"));
        assert!(text.contains("n=1"));
    }
}
