//! Fenwick (binary indexed) tree — order statistics for the quality oracle.
//!
//! The paper measures accuracy by running a sequential linked list alongside
//! the stack and reporting, for every pop, the popped item's *distance from
//! the head* of the list. A literal linked-list scan is O(n) per pop with
//! n = 32,768 resident items; this Fenwick tree provides the same rank in
//! O(log n) so quality instrumentation doesn't distort the run more than
//! necessary. `stack2d-quality` cross-checks it against a naive list in
//! property tests.

/// A Fenwick tree over `0..capacity` supporting point update and prefix sum,
/// growing on demand.
///
/// # Examples
///
/// ```
/// use stack2d_quality::fenwick::Fenwick;
///
/// let mut f = Fenwick::new();
/// f.add(3, 1);
/// f.add(7, 1);
/// assert_eq!(f.prefix_sum(3), 0); // sum of [0, 3)
/// assert_eq!(f.prefix_sum(4), 1);
/// assert_eq!(f.prefix_sum(8), 2);
/// assert_eq!(f.total(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fenwick {
    /// 1-based implicit binary indexed tree.
    tree: Vec<i64>,
    total: i64,
}

impl Fenwick {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Fenwick { tree: Vec::new(), total: 0 }
    }

    /// Creates a tree pre-sized for indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Fenwick { tree: vec![0; capacity + 1], total: 0 }
    }

    /// Number of addressable indices.
    pub fn capacity(&self) -> usize {
        self.tree.len().saturating_sub(1)
    }

    fn grow_to(&mut self, index: usize) {
        let needed = index + 2;
        if self.tree.len() < needed {
            let new_len = needed.next_power_of_two().max(16);
            // Rebuild: Fenwick layout depends on length, so re-insert from a
            // flat dump.
            let mut flat = vec![0i64; self.capacity()];
            for (i, slot) in flat.iter_mut().enumerate() {
                *slot = self.range_sum(i, i + 1);
            }
            self.tree = vec![0; new_len];
            self.total = 0;
            for (i, v) in flat.into_iter().enumerate() {
                if v != 0 {
                    self.add(i, v);
                }
            }
        }
    }

    /// Adds `delta` at `index`, growing the tree if needed.
    pub fn add(&mut self, index: usize, delta: i64) {
        self.grow_to(index);
        self.total += delta;
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `[0, end)`.
    pub fn prefix_sum(&self, end: usize) -> i64 {
        let mut i = end.min(self.capacity());
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum over `[start, end)`.
    pub fn range_sum(&self, start: usize, end: usize) -> i64 {
        if start >= end {
            return 0;
        }
        self.prefix_sum(end) - self.prefix_sum(start)
    }

    /// Sum over the whole tree.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Number of set positions strictly greater than `index`
    /// (assuming 0/1 occupancy, this is the *rank from the top* used by the
    /// oracle).
    pub fn count_above(&self, index: usize) -> i64 {
        self.total - self.prefix_sum(index + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_sums_to_zero() {
        let f = Fenwick::new();
        assert_eq!(f.total(), 0);
        assert_eq!(f.prefix_sum(100), 0);
    }

    #[test]
    fn single_point() {
        let mut f = Fenwick::new();
        f.add(5, 3);
        assert_eq!(f.prefix_sum(5), 0);
        assert_eq!(f.prefix_sum(6), 3);
        assert_eq!(f.total(), 3);
    }

    #[test]
    fn add_and_remove_cancels() {
        let mut f = Fenwick::new();
        f.add(2, 1);
        f.add(2, -1);
        assert_eq!(f.total(), 0);
        assert_eq!(f.prefix_sum(10), 0);
    }

    #[test]
    fn growth_preserves_contents() {
        let mut f = Fenwick::with_capacity(4);
        f.add(0, 1);
        f.add(3, 2);
        // Force growth far beyond the initial capacity.
        f.add(1000, 5);
        assert_eq!(f.prefix_sum(1), 1);
        assert_eq!(f.prefix_sum(4), 3);
        assert_eq!(f.prefix_sum(1001), 8);
        assert_eq!(f.total(), 8);
    }

    #[test]
    fn count_above_is_rank_from_top() {
        let mut f = Fenwick::new();
        for i in 0..10 {
            f.add(i, 1);
        }
        // 9 is topmost (highest index): nothing above it.
        assert_eq!(f.count_above(9), 0);
        assert_eq!(f.count_above(0), 9);
        f.add(9, -1);
        assert_eq!(f.count_above(8), 0);
        assert_eq!(f.count_above(0), 8);
    }

    #[test]
    fn range_sum_matches_prefix_difference() {
        let mut f = Fenwick::new();
        for i in 0..32 {
            f.add(i, (i % 3) as i64);
        }
        for a in 0..32 {
            for b in a..33 {
                assert_eq!(f.range_sum(a, b), f.prefix_sum(b) - f.prefix_sum(a));
            }
        }
        assert_eq!(f.range_sum(10, 5), 0, "inverted range is empty");
    }

    #[test]
    fn matches_naive_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut f = Fenwick::new();
        let mut naive = vec![0i64; 512];
        for _ in 0..2_000 {
            let i = rng.random_range(0..512);
            let d = rng.random_range(-2..=2);
            f.add(i, d);
            naive[i] += d;
            let q = rng.random_range(0..513);
            assert_eq!(f.prefix_sum(q), naive[..q].iter().sum::<i64>());
        }
    }
}
