//! Offline semantic checkers.
//!
//! Two kinds of verification back the repo's claims:
//!
//! * [`check_k_out_of_order`] replays a *single-threaded* operation trace
//!   and verifies every pop returned an item within `k` positions of the
//!   strict stack's top — this is how the property tests validate
//!   Theorem 1's bound `k = (2*shift + depth)*(width-1)` for arbitrary
//!   parameters.
//! * [`Conservation`] performs item accounting for *concurrent* runs: no
//!   item is lost, duplicated, or invented. (Out-of-order distance is not
//!   deterministically checkable under concurrency without a linearization,
//!   which is exactly why the paper — and this repo — measures concurrent
//!   quality with the [oracle](crate::oracle) instead.)

use std::collections::HashSet;
use std::fmt;

use crate::oracle::{Label, Oracle};

/// One event of a recorded single-threaded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A push of the given label.
    Push(Label),
    /// A pop that returned the given label.
    Pop(Label),
    /// A pop that reported the stack empty.
    PopEmpty,
}

/// A violation of k-out-of-order stack semantics found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A pop returned an item `distance` positions from the top, with
    /// `distance > k`.
    OutOfOrder {
        /// Index of the offending op in the trace.
        op_index: usize,
        /// The popped label.
        label: Label,
        /// Its distance from the strict top.
        distance: u32,
        /// The bound that was exceeded.
        k: usize,
    },
    /// A pop returned a label that was never pushed or already popped.
    UnknownLabel {
        /// Index of the offending op in the trace.
        op_index: usize,
        /// The offending label.
        label: Label,
    },
    /// A pop reported empty while items were resident.
    FalseEmpty {
        /// Index of the offending op in the trace.
        op_index: usize,
        /// Number of items actually resident.
        resident: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutOfOrder { op_index, label, distance, k } => {
                write!(f, "op {op_index}: pop({label}) was {distance} out of order (bound k={k})")
            }
            Violation::UnknownLabel { op_index, label } => {
                write!(f, "op {op_index}: pop returned unknown label {label}")
            }
            Violation::FalseEmpty { op_index, resident } => {
                write!(f, "op {op_index}: pop reported empty with {resident} items resident")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Quality numbers extracted from a verified trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceReport {
    /// Number of pops that returned an item.
    pub pops: usize,
    /// Largest observed out-of-order distance.
    pub max_distance: u32,
    /// Mean out-of-order distance.
    pub mean_distance: f64,
}

/// Replays a single-threaded `trace` and checks k-out-of-order stack
/// semantics with bound `k`.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
///
/// # Examples
///
/// ```
/// use stack2d_quality::checker::{check_k_out_of_order, TraceOp};
///
/// // push 1, push 2, pop 1 — distance 1, so k=0 rejects and k=1 accepts.
/// let trace = [TraceOp::Push(1), TraceOp::Push(2), TraceOp::Pop(1)];
/// assert!(check_k_out_of_order(&trace, 0).is_err());
/// let report = check_k_out_of_order(&trace, 1).unwrap();
/// assert_eq!(report.max_distance, 1);
/// ```
pub fn check_k_out_of_order(trace: &[TraceOp], k: usize) -> Result<TraceReport, Violation> {
    let mut oracle = Oracle::new();
    let mut pops = 0usize;
    let mut max_distance = 0u32;
    let mut sum_distance = 0f64;
    for (op_index, op) in trace.iter().enumerate() {
        match *op {
            TraceOp::Push(label) => oracle.insert(label),
            TraceOp::Pop(label) => {
                let distance =
                    oracle.delete(label).ok_or(Violation::UnknownLabel { op_index, label })?;
                if distance as usize > k {
                    return Err(Violation::OutOfOrder { op_index, label, distance, k });
                }
                pops += 1;
                max_distance = max_distance.max(distance);
                sum_distance += distance as f64;
            }
            TraceOp::PopEmpty => {
                if !oracle.is_empty() {
                    return Err(Violation::FalseEmpty { op_index, resident: oracle.len() });
                }
            }
        }
    }
    Ok(TraceReport {
        pops,
        max_distance,
        mean_distance: if pops == 0 { 0.0 } else { sum_distance / pops as f64 },
    })
}

/// Item-conservation accounting for concurrent runs.
///
/// Feed every pushed label and every popped label (from all threads, in any
/// order); [`Conservation::verify`] then checks that pops ⊆ pushes with no
/// duplicates, and that `remaining` matches what is left in the structure.
///
/// # Examples
///
/// ```
/// use stack2d_quality::checker::Conservation;
///
/// let mut c = Conservation::new();
/// c.pushed(1);
/// c.pushed(2);
/// c.popped(2);
/// c.verify(&[1]).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Conservation {
    pushed: HashSet<Label>,
    popped: HashSet<Label>,
    errors: Vec<String>,
}

impl Conservation {
    /// Creates an empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a pushed label.
    pub fn pushed(&mut self, label: Label) {
        if !self.pushed.insert(label) {
            self.errors.push(format!("label {label} pushed twice"));
        }
    }

    /// Records a popped label. Push/pop cross-checks are deferred to
    /// [`Conservation::verify`], so pushes and pops may be fed in any order
    /// (e.g. per-thread logs).
    pub fn popped(&mut self, label: Label) {
        if !self.popped.insert(label) {
            self.errors.push(format!("label {label} popped twice"));
        }
    }

    /// Verifies the accounting against the labels still resident in the
    /// structure after the run.
    ///
    /// # Errors
    ///
    /// Returns every accounting discrepancy as a list of messages.
    pub fn verify(mut self, remaining: &[Label]) -> Result<(), Vec<String>> {
        for &l in &self.popped {
            if !self.pushed.contains(&l) {
                self.errors.push(format!("label {l} popped but never pushed"));
            }
        }
        let mut rem_set = HashSet::new();
        for &l in remaining {
            if !rem_set.insert(l) {
                self.errors.push(format!("label {l} resident twice"));
            }
            if self.popped.contains(&l) {
                self.errors.push(format!("label {l} both popped and resident"));
            }
            if !self.pushed.contains(&l) {
                self.errors.push(format!("label {l} resident but never pushed"));
            }
        }
        let expected_remaining = self.pushed.len() as i64 - self.popped.len() as i64;
        if rem_set.len() as i64 != expected_remaining {
            self.errors.push(format!(
                "residency mismatch: pushed {} - popped {} = {expected_remaining}, found {}",
                self.pushed.len(),
                self.popped.len(),
                rem_set.len()
            ));
        }
        if self.errors.is_empty() {
            Ok(())
        } else {
            Err(self.errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_trace_passes_k_zero() {
        let trace = [
            TraceOp::Push(1),
            TraceOp::Push(2),
            TraceOp::Pop(2),
            TraceOp::Pop(1),
            TraceOp::PopEmpty,
        ];
        let r = check_k_out_of_order(&trace, 0).unwrap();
        assert_eq!(r.pops, 2);
        assert_eq!(r.max_distance, 0);
        assert_eq!(r.mean_distance, 0.0);
    }

    #[test]
    fn out_of_order_beyond_k_is_flagged() {
        let trace = [TraceOp::Push(1), TraceOp::Push(2), TraceOp::Push(3), TraceOp::Pop(1)];
        let err = check_k_out_of_order(&trace, 1).unwrap_err();
        assert_eq!(err, Violation::OutOfOrder { op_index: 3, label: 1, distance: 2, k: 1 });
        assert!(check_k_out_of_order(&trace, 2).is_ok());
    }

    #[test]
    fn unknown_label_is_flagged() {
        let trace = [TraceOp::Push(1), TraceOp::Pop(9)];
        assert_eq!(
            check_k_out_of_order(&trace, 10).unwrap_err(),
            Violation::UnknownLabel { op_index: 1, label: 9 }
        );
    }

    #[test]
    fn double_pop_is_flagged_as_unknown() {
        let trace = [TraceOp::Push(1), TraceOp::Pop(1), TraceOp::Pop(1)];
        assert!(matches!(
            check_k_out_of_order(&trace, 10),
            Err(Violation::UnknownLabel { op_index: 2, .. })
        ));
    }

    #[test]
    fn false_empty_is_flagged() {
        let trace = [TraceOp::Push(1), TraceOp::PopEmpty];
        assert_eq!(
            check_k_out_of_order(&trace, 0).unwrap_err(),
            Violation::FalseEmpty { op_index: 1, resident: 1 }
        );
    }

    #[test]
    fn report_means_are_correct() {
        let trace = [
            TraceOp::Push(1),
            TraceOp::Push(2),
            TraceOp::Push(3),
            TraceOp::Pop(2), // distance 1
            TraceOp::Pop(3), // distance 0
        ];
        let r = check_k_out_of_order(&trace, 5).unwrap();
        assert_eq!(r.pops, 2);
        assert_eq!(r.max_distance, 1);
        assert_eq!(r.mean_distance, 0.5);
    }

    #[test]
    fn violations_display_helpfully() {
        let v = Violation::OutOfOrder { op_index: 3, label: 7, distance: 9, k: 4 };
        let s = v.to_string();
        assert!(s.contains("pop(7)"));
        assert!(s.contains("k=4"));
    }

    #[test]
    fn conservation_accepts_clean_run() {
        let mut c = Conservation::new();
        for l in 0..100 {
            c.pushed(l);
        }
        for l in 0..60 {
            c.popped(l);
        }
        let remaining: Vec<Label> = (60..100).collect();
        c.verify(&remaining).unwrap();
    }

    #[test]
    fn conservation_catches_duplicate_pop() {
        let mut c = Conservation::new();
        c.pushed(1);
        c.popped(1);
        c.popped(1);
        let errs = c.verify(&[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("popped twice")));
    }

    #[test]
    fn conservation_catches_invented_item() {
        let mut c = Conservation::new();
        c.pushed(1);
        c.popped(2);
        assert!(c.verify(&[1]).is_err());
    }

    #[test]
    fn conservation_catches_lost_item() {
        let mut c = Conservation::new();
        c.pushed(1);
        c.pushed(2);
        c.popped(1);
        // Item 2 vanished: remaining is empty.
        let errs = c.verify(&[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("residency mismatch")));
    }

    #[test]
    fn conservation_catches_popped_and_resident() {
        let mut c = Conservation::new();
        c.pushed(1);
        c.popped(1);
        let errs = c.verify(&[1]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("both popped and resident")));
    }
}
