//! # stack2d-quality — relaxation-quality measurement substrate
//!
//! The 2D-Stack paper plots two quantities per experiment: throughput and
//! **accuracy** ("quality"), the latter *"measured in terms of error
//! distance from the LIFO semantics"* using a sequential list run alongside
//! the stack (§4). This crate is that measurement apparatus plus offline
//! semantic checkers:
//!
//! * [`oracle`] — the side list: [`oracle::Oracle`] (Fenwick-backed order
//!   statistics, O(log n) per delete), [`oracle::NaiveOracle`] (literal list
//!   cross-check) and [`oracle::MeasuredStack`] (couples any
//!   [`ConcurrentStack`](stack2d::ConcurrentStack) with the oracle under one
//!   mutex, the paper's "simultaneous insert/delete");
//! * [`stats`] — error-distance aggregation (mean = the paper's expected
//!   error distance, plus percentiles/max);
//! * [`checker`] — [`checker::check_k_out_of_order`] verifies Theorem 1's
//!   bound on single-threaded traces, and [`checker::Conservation`] does
//!   no-loss/no-duplication item accounting for concurrent runs;
//! * [`segmented`] — the elastic extension: [`segmented::MeasuredElastic`]
//!   brackets every pop with the window generation in force, and
//!   [`segmented::check_segments`] verifies the measured error distance
//!   against the *instantaneous* `k_bound()` per generation segment, so
//!   online retuning (`stack2d-adaptive`) stays verifiable;
//! * [`segmented_queue`] — the FIFO mirror for the elastic 2D-Queue:
//!   [`segmented_queue::FifoOracle`] reports how many older items a
//!   dequeue overtook, and [`segmented_queue::MeasuredElasticQueue`]
//!   produces the same per-generation records `check_segments` consumes;
//! * [`fenwick`] — the order-statistics tree underneath the oracles.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checker;
pub mod fenwick;
pub mod linearize;
pub mod oracle;
pub mod segmented;
pub mod segmented_queue;
pub mod stats;
pub mod trace;

pub use checker::{check_k_out_of_order, Conservation, TraceOp, TraceReport, Violation};
pub use linearize::{merge_histories, History, HistoryRecorder, SharedClock};
pub use oracle::{Label, MeasuredStack, NaiveOracle, Oracle};
pub use segmented::{
    bounds_map, check_segments, MeasuredElastic, SegRecord, SegmentReport, SegmentViolation,
};
pub use segmented_queue::{FifoOracle, MeasuredElasticQueue};
pub use stats::{ErrorStats, ErrorSummary};
pub use trace::{replay, ReplayOutcome, Trace, TraceRecorder};
