//! Per-generation out-of-order-distance verification for the elastic
//! 2D-Queue — the FIFO mirror of [`segmented`](crate::segmented).
//!
//! The stack's quality method measures how far a pop lands *below the
//! head* of a strict LIFO list. For a queue the relaxed quantity is how
//! many **older** resident items a dequeue overtakes: a strict FIFO
//! dequeue always takes the oldest item (distance 0), and the 2D-Queue's
//! window bounds the distance by `k = (2*shift + depth)*(width-1)` per
//! generation segment. Under online retuning
//! ([`Queue2D::retune`](stack2d::Queue2D::retune)) the bound changes
//! mid-run, so this module reuses the stack's segment machinery verbatim:
//!
//! * [`FifoOracle`] — the sequential side list for queues: `insert`
//!   appends at the tail, `delete` reports how many *older* labels are
//!   still live (the overtake count);
//! * [`MeasuredElasticQueue`] — couples an elastic [`Queue2D`] of labels
//!   with the oracle under one mutex, bracketing every dequeue with the
//!   get-window generation and the live residency bound
//!   ([`Queue2D::k_bound_instantaneous`](stack2d::Queue2D::k_bound_instantaneous)),
//!   producing the same [`SegRecord`]s
//!   [`check_segments`](crate::segmented::check_segments) consumes.

use std::collections::HashMap;
use std::fmt;

use stack2d::sync::Mutex;

use crate::fenwick::Fenwick;
use crate::oracle::Label;
use crate::segmented::SegRecord;
use stack2d::{Queue2D, QueueHandle};

/// Order-statistics implementation of the sequential FIFO side list.
///
/// # Examples
///
/// ```
/// use stack2d_quality::segmented_queue::FifoOracle;
///
/// let mut o = FifoOracle::new();
/// o.insert(10);
/// o.insert(11);
/// // 10 is the oldest: overtakes nothing. Taking 11 first would overtake
/// // the still-resident 10.
/// assert_eq!(o.delete(11), Some(1));
/// assert_eq!(o.delete(10), Some(0));
/// assert_eq!(o.delete(12), None);
/// ```
#[derive(Debug, Default)]
pub struct FifoOracle {
    /// Live labels → insertion sequence number.
    seq_of: HashMap<Label, usize>,
    /// 1 at every live sequence number.
    live: Fenwick,
    next_seq: usize,
}

impl FifoOracle {
    /// Creates an empty oracle list.
    pub fn new() -> Self {
        FifoOracle { seq_of: HashMap::new(), live: Fenwick::new(), next_seq: 0 }
    }

    /// Inserts `label` at the tail of the list.
    ///
    /// # Panics
    ///
    /// Panics if `label` is already live (labels must be unique).
    pub fn insert(&mut self, label: Label) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.seq_of.insert(label, seq);
        assert!(prev.is_none(), "label {label} inserted twice");
        self.live.add(seq, 1);
    }

    /// Deletes `label`, returning its out-of-order distance — the number
    /// of live labels inserted *earlier* (0 = it *was* the head, i.e. a
    /// perfectly strict dequeue) — or `None` if the label is not live.
    pub fn delete(&mut self, label: Label) -> Option<u32> {
        let seq = self.seq_of.remove(&label)?;
        // Overtake count = live items inserted before `label`.
        let older = self.live.prefix_sum(seq);
        self.live.add(seq, -1);
        Some(older as u32)
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.seq_of.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.seq_of.is_empty()
    }
}

/// An elastic [`Queue2D`] of labels coupled with the FIFO oracle under
/// one mutex — [`MeasuredElastic`](crate::segmented::MeasuredElastic)'s
/// queue twin, so dynamic relaxation of the queue stays verifiable.
///
/// # Examples
///
/// ```
/// use stack2d::{Params, Queue2D};
/// use stack2d_quality::segmented::{bounds_map, check_segments};
/// use stack2d_quality::segmented_queue::MeasuredElasticQueue;
///
/// let queue = Queue2D::builder().params(Params::new(2, 1, 1).unwrap()).elastic_capacity(8).build().unwrap();
/// let initial = queue.window();
/// let measured = MeasuredElasticQueue::new(&queue);
/// let mut h = measured.handle();
/// for _ in 0..100 {
///     h.enqueue();
/// }
/// let grown = queue.retune(Params::new(8, 1, 1).unwrap()).unwrap();
/// for _ in 0..100 {
///     assert!(h.dequeue());
/// }
/// let bounds = bounds_map(initial, [(grown.generation(), grown.k_bound())]);
/// let report = check_segments(&measured.take_records(), &bounds).unwrap();
/// assert_eq!(report.pops, 100);
/// ```
pub struct MeasuredElasticQueue<'q> {
    queue: &'q Queue2D<Label>,
    inner: Mutex<MeasuredInner>,
}

struct MeasuredInner {
    oracle: FifoOracle,
    records: Vec<SegRecord>,
    next_label: Label,
    /// Get-window generation observed when each live label was enqueued —
    /// the push side of the staleness analysis ([`SegRecord::age`]).
    push_gen: HashMap<Label, u64>,
}

impl<'q> MeasuredElasticQueue<'q> {
    /// Wraps `queue` for measured elastic runs.
    pub fn new(queue: &'q Queue2D<Label>) -> Self {
        MeasuredElasticQueue {
            queue,
            inner: Mutex::new(MeasuredInner {
                oracle: FifoOracle::new(),
                records: Vec::new(),
                next_label: 0,
                push_gen: HashMap::new(),
            }),
        }
    }

    /// The wrapped queue.
    pub fn queue(&self) -> &'q Queue2D<Label> {
        self.queue
    }

    /// Registers a measuring handle for the calling thread.
    pub fn handle(&self) -> MeasuredElasticQueueHandle<'_, 'q> {
        MeasuredElasticQueueHandle { measured: self, inner: self.queue.handle() }
    }

    /// Registers a measuring handle with a deterministic RNG seed.
    pub fn handle_seeded(&self, seed: u64) -> MeasuredElasticQueueHandle<'_, 'q> {
        MeasuredElasticQueueHandle { measured: self, inner: self.queue.handle_seeded(seed) }
    }

    /// Pre-fills the queue with `n` labelled items.
    pub fn prefill(&self, n: usize) {
        let mut h = self.handle();
        for _ in 0..n {
            h.enqueue();
        }
    }

    /// Extracts the recorded dequeues, resetting the accumulator.
    pub fn take_records(&self) -> Vec<SegRecord> {
        core::mem::take(&mut self.inner.lock().records)
    }

    /// Number of items the oracle currently believes live.
    pub fn oracle_len(&self) -> usize {
        self.inner.lock().oracle.len()
    }
}

impl fmt::Debug for MeasuredElasticQueue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeasuredElasticQueue").field("queue", &self.queue).finish()
    }
}

/// Per-thread handle performing simultaneous queue + oracle operations
/// with generation bracketing.
pub struct MeasuredElasticQueueHandle<'m, 'q> {
    measured: &'m MeasuredElasticQueue<'q>,
    inner: QueueHandle<'q, Label>,
}

impl MeasuredElasticQueueHandle<'_, '_> {
    /// Enqueues a fresh unique label, remembering the get-window
    /// generation it entered under (the push side of the staleness
    /// analysis).
    pub fn enqueue(&mut self) {
        let mut g = self.measured.inner.lock();
        let label = g.next_label;
        g.next_label += 1;
        // Sample the generation *before* the enqueue: a retune racing the
        // enqueue then over-counts the item's age by one, which is the
        // safe direction for a reported maximum (sampling after would
        // under-count it).
        let generation = self.measured.queue.window().generation();
        self.inner.enqueue(label);
        g.oracle.insert(label);
        g.push_gen.insert(label, generation);
    }

    /// Dequeues a label, recording its out-of-order distance together
    /// with the get-window generations and live residency bound observed
    /// around the dequeue, plus the item's push-side staleness; returns
    /// whether an item was obtained.
    pub fn dequeue(&mut self) -> bool {
        let mut g = self.measured.inner.lock();
        let queue = self.measured.queue;
        let gen_lo = queue.window().generation();
        let live_before = queue.k_bound_instantaneous();
        match self.inner.dequeue() {
            Some(label) => {
                let gen_hi = queue.window().generation();
                let live_bound = live_before.max(queue.k_bound_instantaneous());
                let distance =
                    g.oracle.delete(label).expect("dequeued label must be live in the oracle");
                let pushed_at =
                    g.push_gen.remove(&label).expect("dequeued label must have an enqueue record");
                let age = gen_lo.saturating_sub(pushed_at);
                g.records.push(SegRecord { distance, gen_lo, gen_hi, live_bound, age });
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmented::{bounds_map, check_segments};
    use stack2d::Params;

    fn p(w: usize, d: usize, s: usize) -> Params {
        Params::new(w, d, s).unwrap()
    }

    #[test]
    fn fifo_oracle_strict_fifo_has_zero_distance() {
        let mut o = FifoOracle::new();
        for l in 0..100 {
            o.insert(l);
        }
        for l in 0..100 {
            assert_eq!(o.delete(l), Some(0), "strict FIFO dequeues overtake nothing");
        }
        assert!(o.is_empty());
    }

    #[test]
    fn fifo_oracle_lifo_removal_has_maximal_distance() {
        let mut o = FifoOracle::new();
        for l in 0..10 {
            o.insert(l);
        }
        // LIFO removal: the newest item overtakes all 9 older ones, ...
        for (i, l) in (0..10).rev().enumerate() {
            assert_eq!(o.delete(l), Some((9 - i) as u32));
        }
    }

    #[test]
    fn fifo_oracle_matches_a_naive_list() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut fast = FifoOracle::new();
        // Naive model: live labels in insertion order, head at the front.
        let mut naive: Vec<Label> = Vec::new();
        let mut next = 0;
        for _ in 0..5_000 {
            if naive.is_empty() || rng.random_bool(0.55) {
                fast.insert(next);
                naive.push(next);
                next += 1;
            } else {
                let idx = rng.random_range(0..naive.len());
                let label = naive.remove(idx);
                assert_eq!(fast.delete(label), Some(idx as u32), "label {label}");
            }
            assert_eq!(fast.len(), naive.len());
        }
    }

    #[test]
    fn fifo_oracle_delete_unknown_is_none() {
        let mut o = FifoOracle::new();
        o.insert(1);
        assert_eq!(o.delete(99), None);
        assert_eq!(o.len(), 1);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn fifo_oracle_duplicate_insert_panics() {
        let mut o = FifoOracle::new();
        o.insert(1);
        o.insert(1);
    }

    #[test]
    fn measured_strict_queue_is_exact_per_segment() {
        // width 1 => k = 0 in every generation; distances must all be 0.
        let queue = Queue2D::builder().params(p(1, 1, 1)).elastic_capacity(4).build().unwrap();
        let initial = queue.window();
        let measured = MeasuredElasticQueue::new(&queue);
        let mut h = measured.handle();
        for _ in 0..50 {
            h.enqueue();
        }
        let e1 = queue.retune(p(1, 3, 2)).unwrap(); // vertical retune, still width 1
        for _ in 0..50 {
            assert!(h.dequeue());
        }
        let bounds = bounds_map(initial, [(e1.generation(), e1.k_bound())]);
        let report = check_segments(&measured.take_records(), &bounds).unwrap();
        assert_eq!(report.pops, 50);
        assert_eq!(report.max_distance, 0, "width-1 segments must be strict FIFO");
    }

    #[test]
    fn measured_queue_single_thread_respects_segment_bounds() {
        let queue = Queue2D::builder().params(p(2, 1, 1)).elastic_capacity(16).build().unwrap();
        let initial = queue.window();
        let measured = MeasuredElasticQueue::new(&queue);
        let mut events = Vec::new();
        let mut h = measured.handle();
        for round in 0..4 {
            for _ in 0..200 {
                h.enqueue();
            }
            for _ in 0..150 {
                h.dequeue();
            }
            let width = [16, 4, 8, 2][round];
            let info = queue.retune(p(width, 1, 1)).unwrap();
            events.push((info.generation(), info.k_bound()));
            if let Some(info) = queue.try_commit_shrink() {
                events.push((info.generation(), info.k_bound()));
            }
        }
        while h.dequeue() {}
        let bounds = bounds_map(initial, events);
        let report = check_segments(&measured.take_records(), &bounds).unwrap();
        assert_eq!(report.pops, 800);
        assert_eq!(measured.oracle_len(), 0);
        assert!(report.segments.len() > 1, "multiple generations must appear");
    }

    #[test]
    fn oracle_and_queue_agree_on_residency() {
        let queue = Queue2D::builder().params(p(4, 2, 1)).elastic_capacity(8).build().unwrap();
        let measured = MeasuredElasticQueue::new(&queue);
        measured.prefill(100);
        let mut h = measured.handle();
        for _ in 0..30 {
            h.dequeue();
        }
        assert_eq!(measured.oracle_len(), 70);
        assert_eq!(queue.len(), 70);
    }
}
