//! The elimination back-off stack of Hendler, Shavit and Yerushalmi
//! [HSY 2010] — the strict-semantics scalability baseline of Figure 2.
//!
//! A central Treiber stack, plus a **collision array** used as back-off:
//! an operation that loses the CAS on the central stack publishes itself in
//! a per-thread `location` slot and picks a random collision-array cell. A
//! push/pop pair meeting in a cell *eliminates*: they exchange the item and
//! complete without touching the central stack at all. Elimination preserves
//! linearizability (the pair linearizes back-to-back) and helps exactly when
//! the workload is symmetric — the paper's §2 notes its performance
//! "deteriorates when workloads are asymmetric", which the harness's
//! `asymmetry` experiment demonstrates.
//!
//! Implementation follows the published HSY protocol: active colliders
//! first withdraw their own record (`CAS location[mine] p → null`), then
//! attempt the pairing CAS on the partner's slot; a failed withdrawal means
//! a partner already collided with *us* (passive elimination). Records are
//! epoch-reclaimed, so the `location`/`collision` pointers are ABA-safe.

use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use stack2d::sync::atomic::{AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use crossbeam_utils::CachePadded;
use stack2d::sync::Mutex;

use stack2d::rng::HopRng;
use stack2d::{ConcurrentStack, StackHandle};

/// Sentinel in the collision array: no thread waiting.
const EMPTY: usize = usize::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    Push,
    Pop,
}

struct Node<T> {
    value: ManuallyDrop<T>,
    next: *const Node<T>,
}

/// A thread's published operation record.
struct Record<T> {
    id: usize,
    op: Op,
    /// The item being pushed (null for pop records).
    node: *mut Node<T>,
}

/// Counters describing how operations completed — used by the harness to
/// report elimination rates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EliminationStats {
    /// Operations that completed on the central Treiber stack.
    pub central: u64,
    /// Push operations that eliminated against a concurrent pop.
    pub eliminated_pushes: u64,
    /// Pop operations that eliminated against a concurrent push.
    pub eliminated_pops: u64,
}

/// The HSY elimination back-off stack.
///
/// Strict LIFO semantics; scalability comes from eliminating matching
/// push/pop pairs in a side channel instead of serializing them on the
/// central stack.
///
/// The stack supports at most [`capacity`](EliminationStack::with_capacity)
/// simultaneous handles (default 128); handles recycle their slot on drop.
///
/// # Examples
///
/// ```
/// use stack2d_baselines::EliminationStack;
/// use stack2d::{ConcurrentStack, StackHandle};
///
/// let s = EliminationStack::new();
/// let mut h = s.handle();
/// h.push(5);
/// assert_eq!(h.pop(), Some(5));
/// assert_eq!(h.pop(), None);
/// ```
pub struct EliminationStack<T> {
    head: Atomic<Node<T>>,
    location: Box<[Atomic<Record<T>>]>,
    collision: Box<[CachePadded<AtomicUsize>]>,
    free_slots: Mutex<Vec<usize>>,
    /// Spin iterations while waiting for a partner.
    spin: usize,
    eliminated_pushes: CachePadded<AtomicUsize>,
    eliminated_pops: CachePadded<AtomicUsize>,
    central_ops: CachePadded<AtomicUsize>,
}

// SAFETY: nodes and collision records are owned by the stack and values only
// cross threads by moving out, so `T: Send` is the full requirement (the raw
// node pointers are what suppress the auto-impl).
unsafe impl<T: Send> Send for EliminationStack<T> {}
// SAFETY: as above — shared access is mediated by CASes on head, location
// slots and collision cells.
unsafe impl<T: Send> Sync for EliminationStack<T> {}

impl<T> EliminationStack<T> {
    /// Creates a stack supporting up to 128 simultaneous handles.
    pub fn new() -> Self {
        Self::with_capacity(128)
    }

    /// Creates a stack supporting up to `capacity` simultaneous handles,
    /// with a collision array of `max(1, capacity / 2)` cells (the HSY
    /// sizing).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        EliminationStack {
            head: Atomic::null(),
            location: (0..capacity).map(|_| Atomic::null()).collect(),
            collision: (0..(capacity / 2).max(1))
                .map(|_| CachePadded::new(AtomicUsize::new(EMPTY)))
                .collect(),
            free_slots: Mutex::new((0..capacity).rev().collect()),
            spin: 64,
            eliminated_pushes: CachePadded::new(AtomicUsize::new(0)),
            eliminated_pops: CachePadded::new(AtomicUsize::new(0)),
            central_ops: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// How operations have completed so far (central vs eliminated).
    pub fn stats(&self) -> EliminationStats {
        EliminationStats {
            central: self.central_ops.load(Ordering::Relaxed) as u64,
            eliminated_pushes: self.eliminated_pushes.load(Ordering::Relaxed) as u64,
            eliminated_pops: self.eliminated_pops.load(Ordering::Relaxed) as u64,
        }
    }

    /// Whether the central stack is empty (elimination holds no items at
    /// rest).
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }

    /// Pushes through a temporary handle.
    ///
    /// # Panics
    ///
    /// Panics if all handle slots are taken.
    pub fn push(&self, value: T)
    where
        T: Send,
    {
        self.handle().push(value);
    }

    /// Pops through a temporary handle.
    ///
    /// # Panics
    ///
    /// Panics if all handle slots are taken.
    pub fn pop(&self) -> Option<T>
    where
        T: Send,
    {
        self.handle().pop()
    }

    fn try_central_push(&self, node: *mut Node<T>, guard: &Guard) -> bool {
        let head = self.head.load(Ordering::Acquire, guard);
        // SAFETY: the node is still private to this thread (not yet
        // published), so the plain write cannot race.
        unsafe { (*node).next = head.as_raw() };
        self.head
            .compare_exchange(
                head,
                Shared::from(node as *const Node<T>),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            )
            .is_ok()
    }

    /// `Ok(Some)` popped, `Ok(None)` observed empty, `Err(())` lost the CAS.
    fn try_central_pop(&self, guard: &Guard) -> Result<Option<T>, ()> {
        let head = self.head.load(Ordering::Acquire, guard);
        // SAFETY: the epoch guard keeps any node reachable from `head`
        // alive for this attempt.
        let node = match unsafe { head.as_ref() } {
            Some(n) => n,
            None => return Ok(None),
        };
        match self.head.compare_exchange(
            head,
            Shared::from(node.next),
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        ) {
            Ok(_) => {
                // SAFETY: winning the pop CAS grants the unique right to
                // consume this node's value; `value` is `ManuallyDrop`, so
                // the deferred deallocation won't double-drop it.
                let value = unsafe { ptr::read(&*node.value) };
                // SAFETY: our CAS unlinked the node; only the winner retires
                // it, exactly once.
                unsafe { guard.defer_destroy(head) };
                Ok(Some(value))
            }
            Err(_) => Err(()),
        }
    }

    /// One elimination attempt for a push holding `node`.
    /// Returns true iff the item was handed to a pop.
    fn try_eliminate_push(
        &self,
        id: usize,
        node: *mut Node<T>,
        rng: &mut HopRng,
        guard: &Guard,
    ) -> bool {
        let p = Owned::new(Record { id, op: Op::Push, node }).into_shared(guard);
        self.location[id].store(p, Ordering::Release);
        let pos = rng.bounded(self.collision.len());
        let mut him = self.collision[pos].load(Ordering::Acquire);
        while self.collision[pos]
            .compare_exchange(him, id, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            him = self.collision[pos].load(Ordering::Acquire);
        }
        if him != EMPTY && him != id {
            let q = self.location[him].load(Ordering::Acquire, guard);
            // SAFETY: records are only reclaimed via `defer_destroy`, so the
            // epoch guard keeps `q` alive while we inspect it.
            if let Some(qr) = unsafe { q.as_ref() } {
                if qr.id == him && qr.op == Op::Pop {
                    // Active collision: withdraw our record first.
                    if self.location[id]
                        .compare_exchange(
                            p,
                            Shared::null(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_ok()
                    {
                        // Hand our record (and node) to the popper.
                        if self.location[him]
                            .compare_exchange(q, p, Ordering::AcqRel, Ordering::Acquire, guard)
                            .is_ok()
                        {
                            // SAFETY: our CAS removed `q` from him's slot —
                            // we are its only retirer.
                            unsafe { guard.defer_destroy(q) };
                            self.eliminated_pushes.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                        // SAFETY: partner vanished; we withdrew `p`
                        // ourselves so it is unlinked, and this is its only
                        // retirement (readers may still hold it: defer).
                        unsafe { guard.defer_destroy(p) };
                        return false;
                    }
                    // Withdrawal failed: a popper collided with us.
                    return self.finish_passive_push(id, guard);
                }
            }
        }
        // Wait for a passive collision.
        for _ in 0..self.spin {
            core::hint::spin_loop();
        }
        if self.location[id]
            .compare_exchange(p, Shared::null(), Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // SAFETY: the successful withdrawal CAS unlinked `p`; this is
            // its only retirement.
            unsafe { guard.defer_destroy(p) };
            false
        } else {
            self.finish_passive_push(id, guard)
        }
    }

    /// A popper collided with our push record: it CASed `location[id]` to
    /// null and took the node. Nothing left to do.
    fn finish_passive_push(&self, id: usize, guard: &Guard) -> bool {
        debug_assert!(self.location[id].load(Ordering::Acquire, guard).is_null());
        self.eliminated_pushes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// One elimination attempt for a pop. Returns the eliminated value.
    fn try_eliminate_pop(&self, id: usize, rng: &mut HopRng, guard: &Guard) -> Option<T> {
        let p = Owned::new(Record { id, op: Op::Pop, node: ptr::null_mut() }).into_shared(guard);
        self.location[id].store(p, Ordering::Release);
        let pos = rng.bounded(self.collision.len());
        let mut him = self.collision[pos].load(Ordering::Acquire);
        while self.collision[pos]
            .compare_exchange(him, id, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            him = self.collision[pos].load(Ordering::Acquire);
        }
        if him != EMPTY && him != id {
            let q = self.location[him].load(Ordering::Acquire, guard);
            // SAFETY: records are only reclaimed via `defer_destroy`, so the
            // epoch guard keeps `q` alive while we inspect it.
            if let Some(qr) = unsafe { q.as_ref() } {
                if qr.id == him && qr.op == Op::Push {
                    if self.location[id]
                        .compare_exchange(
                            p,
                            Shared::null(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_ok()
                    {
                        // Take the pusher's record out of his slot.
                        if self.location[him]
                            .compare_exchange(
                                q,
                                Shared::null(),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                                guard,
                            )
                            .is_ok()
                        {
                            // SAFETY: our CAS took `q` out of him's slot,
                            // which is exactly the unique consumption right
                            // `consume_record` requires.
                            let value = unsafe { Self::consume_record(q) };
                            // SAFETY: `q` is unlinked by the same CAS; we
                            // are its only retirer.
                            unsafe { guard.defer_destroy(q) };
                            self.eliminated_pops.fetch_add(1, Ordering::Relaxed);
                            return Some(value);
                        }
                        // SAFETY: we withdrew `p` ourselves, so it is
                        // unlinked and this is its only retirement.
                        unsafe { guard.defer_destroy(p) };
                        return None;
                    }
                    return Some(self.finish_passive_pop(id, guard));
                }
            }
        }
        for _ in 0..self.spin {
            core::hint::spin_loop();
        }
        if self.location[id]
            .compare_exchange(p, Shared::null(), Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // SAFETY: the successful withdrawal CAS unlinked `p`; this is
            // its only retirement.
            unsafe { guard.defer_destroy(p) };
            None
        } else {
            Some(self.finish_passive_pop(id, guard))
        }
    }

    /// A pusher collided with our pop record: our slot now holds *his*
    /// record. Consume it.
    fn finish_passive_pop(&self, id: usize, guard: &Guard) -> T {
        let r = self.location[id].load(Ordering::Acquire, guard);
        debug_assert!(!r.is_null(), "passive pop must find the pusher's record");
        self.location[id].store(Shared::null(), Ordering::Release);
        // SAFETY: the pusher handed `r` to our slot and will never touch it
        // again — finding it there is the unique consumption right.
        let value = unsafe { Self::consume_record(r) };
        // SAFETY: we just cleared the slot, unlinking `r`; we are its only
        // retirer.
        unsafe { guard.defer_destroy(r) };
        self.eliminated_pops.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Moves the value out of a push record's node and frees the node.
    ///
    /// # Safety
    ///
    /// The caller must hold the unique consumption right for `record`
    /// (obtained by CASing it out of a location slot, or by finding it in
    /// the caller's own slot).
    unsafe fn consume_record(record: Shared<'_, Record<T>>) -> T {
        // SAFETY: the caller's contract gives us the unique consumption
        // right, so the record is live and `node` is the Box-allocated node
        // its pusher stored — unreachable to any other thread from here on.
        unsafe {
            let r = record.deref();
            debug_assert_eq!(r.op, Op::Push);
            let node = r.node;
            let value = ptr::read(&*(*node).value);
            // The node was never published on the central stack; free it now.
            drop(Box::from_raw(node));
            value
        }
    }
}

impl<T> Default for EliminationStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for EliminationStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EliminationStack")
            .field("capacity", &self.location.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<T> Drop for EliminationStack<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access (quiescence), so
        // the unprotected guard is sound; central nodes hold initialized
        // values exactly once, and no collision records are in flight.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head.load(Ordering::Relaxed, guard).as_raw();
            while !cur.is_null() {
                let mut boxed = Box::from_raw(cur as *mut Node<T>);
                ManuallyDrop::drop(&mut boxed.value);
                cur = boxed.next;
            }
            // Quiescence at drop: no records can be in flight.
            for slot in self.location.iter() {
                let r = slot.load(Ordering::Relaxed, guard);
                debug_assert!(r.is_null(), "record leaked in location slot");
            }
        }
    }
}

/// Per-thread handle to an [`EliminationStack`]; owns a `location` slot.
pub struct EliminationHandle<'s, T> {
    stack: &'s EliminationStack<T>,
    id: usize,
    rng: HopRng,
}

impl<T> Drop for EliminationHandle<'_, T> {
    fn drop(&mut self) {
        self.stack.free_slots.lock().push(self.id);
    }
}

impl<T> fmt::Debug for EliminationHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EliminationHandle").field("id", &self.id).finish()
    }
}

impl<T: Send> StackHandle<T> for EliminationHandle<'_, T> {
    fn push(&mut self, value: T) {
        let stack = self.stack;
        let guard = epoch::pin();
        let node =
            Box::into_raw(Box::new(Node { value: ManuallyDrop::new(value), next: ptr::null() }));
        loop {
            if stack.try_central_push(node, &guard) {
                stack.central_ops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if stack.try_eliminate_push(self.id, node, &mut self.rng, &guard) {
                return;
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        let stack = self.stack;
        let guard = epoch::pin();
        loop {
            if let Ok(v) = stack.try_central_pop(&guard) {
                if v.is_some() {
                    stack.central_ops.fetch_add(1, Ordering::Relaxed);
                }
                return v;
            }
            if let Some(v) = stack.try_eliminate_pop(self.id, &mut self.rng, &guard) {
                return Some(v);
            }
        }
    }
}

impl<T: Send> ConcurrentStack<T> for EliminationStack<T> {
    type Handle<'a>
        = EliminationHandle<'a, T>
    where
        T: 'a;

    /// # Panics
    ///
    /// Panics if more handles are live than the stack's capacity.
    fn handle(&self) -> Self::Handle<'_> {
        let id = self.free_slots.lock().pop().expect("elimination stack handle capacity exhausted");
        EliminationHandle { stack: self, id, rng: HopRng::from_thread() }
    }

    fn handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        let id = self.free_slots.lock().pop().expect("elimination stack handle capacity exhausted");
        EliminationHandle { stack: self, id, rng: HopRng::seeded(seed) }
    }

    fn name(&self) -> &'static str {
        "elimination"
    }

    fn relaxation_bound(&self) -> Option<usize> {
        Some(0)
    }
}

stack2d::impl_relaxed_ops_for_stack!(EliminationStack);

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::sync::Arc;
    use std::collections::HashSet;

    #[test]
    fn sequential_lifo() {
        let s = EliminationStack::new();
        let mut h = s.handle();
        for i in 0..500 {
            h.push(i);
        }
        for i in (0..500).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn empty_pop_is_none() {
        let s: EliminationStack<u8> = EliminationStack::new();
        let mut h = s.handle();
        assert_eq!(h.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn handle_slots_recycle() {
        let s: EliminationStack<u8> = EliminationStack::with_capacity(2);
        for _ in 0..10 {
            let h1 = s.handle();
            let h2 = s.handle();
            drop(h1);
            drop(h2);
        }
        // Still exactly two slots available.
        let _h1 = s.handle();
        let _h2 = s.handle();
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn capacity_overflow_panics() {
        let s: EliminationStack<u8> = EliminationStack::with_capacity(1);
        let _h1 = s.handle();
        let _h2 = s.handle();
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        const THREADS: usize = 4;
        const PER: usize = 4_000;
        let s = Arc::new(EliminationStack::new());
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            joins.push(stack2d::sync::thread::spawn(move || {
                let mut h = s.handle();
                let mut got = Vec::new();
                for i in 0..PER {
                    h.push((t * PER + i) as u64);
                    if i % 2 == 1 {
                        if let Some(v) = h.pop() {
                            got.push(v);
                        }
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for j in joins {
            all.extend(j.join().unwrap());
        }
        let mut h = s.handle();
        while let Some(v) = h.pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..(THREADS * PER) as u64).collect::<Vec<_>>());
    }

    #[test]
    fn symmetric_storm_eventually_eliminates() {
        // With many symmetric pairs hammering a tiny collision array,
        // elimination should fire at least once; item conservation must hold
        // regardless.
        let s = Arc::new(EliminationStack::with_capacity(16));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            joins.push(stack2d::sync::thread::spawn(move || {
                let mut h = s.handle();
                let mut seen = HashSet::new();
                for i in 0..20_000u64 {
                    h.push(t * 1_000_000 + i);
                    if let Some(v) = h.pop() {
                        seen.insert(v);
                    }
                }
                seen.len()
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = s.stats();
        // Pairs are symmetric: eliminated pushes and pops must agree.
        assert_eq!(stats.eliminated_pushes, stats.eliminated_pops);
    }

    #[test]
    fn values_survive_elimination_paths() {
        // Heap values: if any double-free/leak path existed in the record
        // handoff, this test (under the default test allocator) or the
        // canary below would catch it.
        use stack2d::sync::atomic::AtomicUsize as AU;
        struct Canary(Arc<AU>, #[allow(dead_code)] String);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AU::new(0));
        let created = 4 * 2_000;
        {
            let s = Arc::new(EliminationStack::with_capacity(8));
            let mut joins = Vec::new();
            for _ in 0..4 {
                let s = Arc::clone(&s);
                let drops = Arc::clone(&drops);
                joins.push(stack2d::sync::thread::spawn(move || {
                    let mut h = s.handle();
                    for i in 0..2_000 {
                        h.push(Canary(drops.clone(), format!("v{i}")));
                        if i % 2 == 0 {
                            drop(h.pop());
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        }
        // Stack dropped: every canary created must have dropped exactly once.
        assert_eq!(drops.load(Ordering::SeqCst), created);
    }

    #[test]
    fn stats_start_at_zero() {
        let s: EliminationStack<u8> = EliminationStack::new();
        assert_eq!(s.stats(), EliminationStats::default());
    }

    #[test]
    fn trait_metadata() {
        let s: EliminationStack<u8> = EliminationStack::new();
        assert_eq!(ConcurrentStack::<u8>::name(&s), "elimination");
        assert_eq!(ConcurrentStack::<u8>::relaxation_bound(&s), Some(0));
    }
}
