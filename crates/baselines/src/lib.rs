//! # stack2d-baselines — every stack the 2D-Stack paper evaluates against
//!
//! The PODC'18 evaluation compares the 2D-Stack with six other designs;
//! this crate implements all of them behind the shared
//! [`ConcurrentStack`](stack2d::ConcurrentStack) interface so the workload
//! runner and the figure harness treat every algorithm identically:
//!
//! | paper legend  | type | semantics |
//! |---------------|------|-----------|
//! | `treiber`     | [`TreiberStack`] | strict LIFO, single CAS point |
//! | `elimination` | [`EliminationStack`] | strict LIFO, collision-array back-off |
//! | `k-segment`   | [`KSegmentStack`] | k-out-of-order, segmented |
//! | `random`      | [`RandomStack`] | relaxed, uniform scheduling |
//! | `random-c2`   | [`RandomC2Stack`] | relaxed, choice-of-two scheduling |
//! | `k-robin`     | [`KRobinStack`] | relaxed, round-robin scheduling |
//! | (tests only)  | [`LockedStack`] | strict LIFO oracle |
//! | (queue ref.)  | [`LockedQueue`] | strict FIFO oracle |
//!
//! The distribution baselines (`random`, `random-c2`, `k-robin`) are built
//! from the same counted [`SubStack`](stack2d::substack::SubStack) block as
//! the 2D-Stack itself, exactly as in the paper — they differ only in
//! scheduling, which is the point of the comparison.
//!
//! Every baseline is also drivable through the structure-generic
//! [`RelaxedOps`](stack2d::RelaxedOps) contract (the stacks via
//! [`impl_relaxed_ops_for_stack!`](stack2d::impl_relaxed_ops_for_stack),
//! the locked queue directly), so the workload runner measures them with
//! the exact same driver as the 2D structures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributed;
pub mod elimination;
pub mod ksegment;
pub mod locked;
pub mod locked_queue;
pub mod treiber;

pub use distributed::{KRobinStack, RandomC2Stack, RandomStack};
pub use elimination::{EliminationStack, EliminationStats};
pub use ksegment::KSegmentStack;
pub use locked::LockedStack;
pub use locked_queue::{LockedQueue, LockedQueueHandle};
pub use treiber::TreiberStack;
