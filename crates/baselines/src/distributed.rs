//! The distribution/scheduling baselines the paper implemented alongside
//! the 2D-Stack (§1, §4): `random`, `random-c2` and `k-robin`.
//!
//! All three split the stack into `width` independent Treiber-style
//! sub-stacks (the same [`SubStack`] block the 2D-Stack uses) and differ
//! only in how operations are *scheduled* onto sub-stacks:
//!
//! * [`RandomStack`] — pick a sub-stack uniformly at random per operation;
//! * [`RandomC2Stack`] — sample two sub-stacks and pick the better one by
//!   item count (push → shorter, pop → longer), the "power of two choices"
//!   policy of the MultiQueues [Rihani, Sanders, Dementiev 2015];
//! * [`KRobinStack`] — a per-thread round-robin cursor; on contention the
//!   thread *keeps retrying the same sub-stack*, which is exactly the
//!   behaviour the paper contrasts against the 2D-Stack's contention-
//!   avoiding hops (§4: "k-robin ... keeps retrying on the same sub-stack").
//!
//! None of these bounds relaxation deterministically the way the window
//! does; `k-robin`'s bound grows with the number of threads, and `random`'s
//! error is only probabilistic. Pop-side emptiness is decided by a covering
//! sweep over all sub-stacks, as in the 2D-Stack.

use core::fmt;

use crossbeam_utils::CachePadded;

use stack2d::rng::HopRng;
use stack2d::substack::{Contended, PreparedNode, SubStack};
use stack2d::{ConcurrentStack, StackHandle};

/// Shared chassis: an array of counted sub-stacks.
struct SubArray<T> {
    subs: Box<[CachePadded<SubStack<T>>]>,
}

impl<T> SubArray<T> {
    fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        SubArray { subs: (0..width).map(|_| CachePadded::new(SubStack::new())).collect() }
    }

    #[inline]
    fn width(&self) -> usize {
        self.subs.len()
    }

    /// Pops from sub-stack `start` or, failing that, sweeps all others;
    /// returns `None` only after a full sweep observed every sub-stack
    /// empty.
    fn pop_with_sweep(&self, start: usize) -> Option<T> {
        let width = self.width();
        let guard = crossbeam_epoch::pin();
        loop {
            let mut all_empty = true;
            for off in 0..width {
                let i = (start + off) % width;
                let view = self.subs[i].view(&guard);
                if view.is_empty() {
                    continue;
                }
                all_empty = false;
                match self.subs[i].try_pop_at(&view, &guard) {
                    Ok(Some(v)) => return Some(v),
                    Ok(None) => unreachable!("non-empty view popped empty"),
                    Err(Contended(())) => {
                        // Lost a race: the sweep's emptiness verdict is
                        // stale; restart it.
                        break;
                    }
                }
            }
            if all_empty {
                return None;
            }
        }
    }

    fn len(&self) -> usize {
        self.subs.iter().map(|s| s.len()).sum()
    }
}

impl<T> fmt::Debug for SubArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubArray").field("width", &self.width()).finish()
    }
}

// ---------------------------------------------------------------------------
// random
// ---------------------------------------------------------------------------

/// Uniform-random scheduling over `width` sub-stacks.
///
/// # Examples
///
/// ```
/// use stack2d_baselines::RandomStack;
///
/// let s = RandomStack::new(4);
/// s.push(1);
/// assert_eq!(s.pop(), Some(1));
/// ```
pub struct RandomStack<T> {
    arr: SubArray<T>,
}

impl<T> RandomStack<T> {
    /// Creates a random-scheduled stack over `width` sub-stacks.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        RandomStack { arr: SubArray::new(width) }
    }

    /// Number of sub-stacks.
    pub fn width(&self) -> usize {
        self.arr.width()
    }

    /// Total resident items (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// Whether all sub-stacks are empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push through a temporary handle.
    pub fn push(&self, value: T)
    where
        T: Send,
    {
        self.handle().push(value);
    }

    /// Pop through a temporary handle.
    pub fn pop(&self) -> Option<T>
    where
        T: Send,
    {
        self.handle().pop()
    }
}

impl<T> fmt::Debug for RandomStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomStack").field("width", &self.width()).finish()
    }
}

/// Per-thread handle to a [`RandomStack`].
pub struct RandomHandle<'s, T> {
    stack: &'s RandomStack<T>,
    rng: HopRng,
}

impl<T: Send> StackHandle<T> for RandomHandle<'_, T> {
    fn push(&mut self, value: T) {
        let mut node = PreparedNode::new(value);
        let guard = crossbeam_epoch::pin();
        loop {
            let i = self.rng.bounded(self.stack.width());
            let sub = &self.stack.arr.subs[i];
            let view = sub.view(&guard);
            match sub.try_push_at(&view, node, &guard) {
                Ok(()) => return,
                Err(Contended(n)) => node = n,
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        let start = self.rng.bounded(self.stack.width());
        self.stack.arr.pop_with_sweep(start)
    }
}

impl<T> fmt::Debug for RandomHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomHandle").finish_non_exhaustive()
    }
}

impl<T: Send> ConcurrentStack<T> for RandomStack<T> {
    type Handle<'a>
        = RandomHandle<'a, T>
    where
        T: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        RandomHandle { stack: self, rng: HopRng::from_thread() }
    }

    fn handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        RandomHandle { stack: self, rng: HopRng::seeded(seed) }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

stack2d::impl_relaxed_ops_for_stack!(RandomStack);

// ---------------------------------------------------------------------------
// random-c2
// ---------------------------------------------------------------------------

/// Choice-of-two scheduling: sample two sub-stacks, push to the shorter and
/// pop from the longer.
///
/// Item counts are the hotness signal (the only totally-ordered one a stack
/// descriptor exposes); this mirrors the MultiQueue policy the paper cites
/// as `random-c2`.
pub struct RandomC2Stack<T> {
    arr: SubArray<T>,
}

impl<T> RandomC2Stack<T> {
    /// Creates a choice-of-two stack over `width` sub-stacks.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        RandomC2Stack { arr: SubArray::new(width) }
    }

    /// Number of sub-stacks.
    pub fn width(&self) -> usize {
        self.arr.width()
    }

    /// Total resident items (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// Whether all sub-stacks are empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push through a temporary handle.
    pub fn push(&self, value: T)
    where
        T: Send,
    {
        self.handle().push(value);
    }

    /// Pop through a temporary handle.
    pub fn pop(&self) -> Option<T>
    where
        T: Send,
    {
        self.handle().pop()
    }
}

impl<T> fmt::Debug for RandomC2Stack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomC2Stack").field("width", &self.width()).finish()
    }
}

/// Per-thread handle to a [`RandomC2Stack`].
pub struct RandomC2Handle<'s, T> {
    stack: &'s RandomC2Stack<T>,
    rng: HopRng,
}

impl<T: Send> StackHandle<T> for RandomC2Handle<'_, T> {
    fn push(&mut self, value: T) {
        let mut node = PreparedNode::new(value);
        let guard = crossbeam_epoch::pin();
        let width = self.stack.width();
        loop {
            let a = self.rng.bounded(width);
            let b = self.rng.bounded(width);
            let va = self.stack.arr.subs[a].view(&guard);
            let vb = self.stack.arr.subs[b].view(&guard);
            // Push to the shorter of the two samples.
            let (i, view) = if va.count() <= vb.count() { (a, va) } else { (b, vb) };
            match self.stack.arr.subs[i].try_push_at(&view, node, &guard) {
                Ok(()) => return,
                Err(Contended(n)) => node = n,
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        let guard = crossbeam_epoch::pin();
        let width = self.stack.width();
        // Bounded number of two-sample attempts, then fall back to a
        // covering sweep so emptiness is decided exactly.
        for _ in 0..width {
            let a = self.rng.bounded(width);
            let b = self.rng.bounded(width);
            let va = self.stack.arr.subs[a].view(&guard);
            let vb = self.stack.arr.subs[b].view(&guard);
            // Pop from the longer of the two samples.
            let (i, view) = if va.count() >= vb.count() { (a, va) } else { (b, vb) };
            if view.is_empty() {
                continue;
            }
            if let Ok(Some(v)) = self.stack.arr.subs[i].try_pop_at(&view, &guard) {
                return Some(v);
            }
        }
        let start = self.rng.bounded(width);
        self.stack.arr.pop_with_sweep(start)
    }
}

impl<T> fmt::Debug for RandomC2Handle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomC2Handle").finish_non_exhaustive()
    }
}

impl<T: Send> ConcurrentStack<T> for RandomC2Stack<T> {
    type Handle<'a>
        = RandomC2Handle<'a, T>
    where
        T: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        RandomC2Handle { stack: self, rng: HopRng::from_thread() }
    }

    fn handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        RandomC2Handle { stack: self, rng: HopRng::seeded(seed) }
    }

    fn name(&self) -> &'static str {
        "random-c2"
    }
}

stack2d::impl_relaxed_ops_for_stack!(RandomC2Stack);

// ---------------------------------------------------------------------------
// k-robin
// ---------------------------------------------------------------------------

/// Per-thread round-robin scheduling over `width` sub-stacks.
///
/// On a lost CAS the thread retries the *same* sub-stack (no contention
/// avoidance) — the behaviour the paper's Figure 1 analysis attributes
/// k-robin's low-relaxation throughput deficit to.
pub struct KRobinStack<T> {
    arr: SubArray<T>,
    /// Estimated out-of-order bound for a given thread count; reported via
    /// [`ConcurrentStack::relaxation_bound`]. See [`KRobinStack::new`].
    bound: usize,
}

impl<T> KRobinStack<T> {
    /// Creates a round-robin stack over `width` sub-stacks, assuming at most
    /// `threads` concurrent threads.
    ///
    /// The reported relaxation bound is `2 * threads * (width - 1)`: between
    /// two visits of a thread to the same sub-stack, every other thread can
    /// advance its own cursor past `width - 1` other sub-stacks in each
    /// direction. This is the calibration the harness uses to place k-robin
    /// on Figure 1's k-axis (the paper notes k-robin "reduces the number of
    /// sub-stacks with the increase in number of threads to keep the quality
    /// bound").
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize, threads: usize) -> Self {
        KRobinStack { arr: SubArray::new(width), bound: 2 * threads.max(1) * (width - 1) }
    }

    /// Inverts the bound calibration: the widest `width` whose estimated
    /// bound stays within `k` for `threads` threads.
    pub fn width_for_k(k: usize, threads: usize) -> usize {
        (k / (2 * threads.max(1)) + 1).max(1)
    }

    /// Number of sub-stacks.
    pub fn width(&self) -> usize {
        self.arr.width()
    }

    /// Total resident items (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.arr.len()
    }

    /// Whether all sub-stacks are empty (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push through a temporary handle.
    pub fn push(&self, value: T)
    where
        T: Send,
    {
        self.handle().push(value);
    }

    /// Pop through a temporary handle.
    pub fn pop(&self) -> Option<T>
    where
        T: Send,
    {
        self.handle().pop()
    }
}

impl<T> fmt::Debug for KRobinStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KRobinStack")
            .field("width", &self.width())
            .field("bound", &self.bound)
            .finish()
    }
}

/// Per-thread handle to a [`KRobinStack`].
///
/// The cursor mirrors stack discipline: a push claims the cursor's
/// sub-stack and advances it, a pop retreats the cursor and takes from the
/// sub-stack it lands on. Per thread, a pop therefore revisits the
/// sub-stack of the most recent un-popped push, which is what keeps the
/// scheme's out-of-order distance proportional to `width` on balanced
/// workloads.
pub struct KRobinHandle<'s, T> {
    stack: &'s KRobinStack<T>,
    cursor: usize,
}

impl<T: Send> StackHandle<T> for KRobinHandle<'_, T> {
    fn push(&mut self, value: T) {
        let width = self.stack.width();
        let i = self.cursor % width;
        self.cursor = (self.cursor + 1) % width;
        let mut node = PreparedNode::new(value);
        let guard = crossbeam_epoch::pin();
        let sub = &self.stack.arr.subs[i];
        // Retry on the *same* sub-stack until the CAS succeeds.
        loop {
            let view = sub.view(&guard);
            match sub.try_push_at(&view, node, &guard) {
                Ok(()) => return,
                Err(Contended(n)) => node = n,
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        let width = self.stack.width();
        // Retreat to the sub-stack of the most recent un-popped push.
        self.cursor = (self.cursor + width - 1) % width;
        let i = self.cursor;
        let guard = crossbeam_epoch::pin();
        let sub = &self.stack.arr.subs[i];
        loop {
            let view = sub.view(&guard);
            if view.is_empty() {
                // This round-robin target is empty; fall back to a covering
                // sweep so emptiness is decided exactly.
                return self.stack.arr.pop_with_sweep(i);
            }
            match sub.try_pop_at(&view, &guard) {
                Ok(v) => return v,
                Err(Contended(())) => continue,
            }
        }
    }
}

impl<T> fmt::Debug for KRobinHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KRobinHandle").field("cursor", &self.cursor).finish()
    }
}

impl<T: Send> ConcurrentStack<T> for KRobinStack<T> {
    type Handle<'a>
        = KRobinHandle<'a, T>
    where
        T: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        KRobinHandle { stack: self, cursor: 0 }
    }

    fn handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        // Round-robin carries no RNG; seed the starting cursor instead so
        // seeded runs still decorrelate their handles deterministically.
        KRobinHandle { stack: self, cursor: seed as usize % self.width().max(1) }
    }

    fn name(&self) -> &'static str {
        "k-robin"
    }

    fn relaxation_bound(&self) -> Option<usize> {
        Some(self.bound)
    }
}

stack2d::impl_relaxed_ops_for_stack!(KRobinStack);

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::sync::Arc;
    use std::collections::HashSet;

    fn exercise<S: ConcurrentStack<u64>>(stack: &S, n: u64) {
        let mut h = stack.handle();
        for i in 0..n {
            h.push(i);
        }
        let mut seen = HashSet::new();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        assert_eq!(seen.len() as u64, n, "{} lost items", stack.name());
    }

    #[test]
    fn random_recovers_all_items() {
        exercise(&RandomStack::new(4), 2_000);
    }

    #[test]
    fn random_c2_recovers_all_items() {
        exercise(&RandomC2Stack::new(4), 2_000);
    }

    #[test]
    fn k_robin_recovers_all_items() {
        exercise(&KRobinStack::new(4, 1), 2_000);
    }

    #[test]
    fn width_one_random_is_strict() {
        let s = RandomStack::new(1);
        let mut h = s.handle();
        for i in 0..100 {
            h.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(h.pop(), Some(i));
        }
    }

    #[test]
    fn width_one_krobin_is_strict() {
        let s = KRobinStack::new(1, 4);
        let mut h = s.handle();
        for i in 0..100 {
            h.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(ConcurrentStack::<i32>::relaxation_bound(&s), Some(0));
    }

    #[test]
    fn k_robin_spreads_items_evenly() {
        let s = KRobinStack::new(4, 1);
        let mut h = s.handle();
        for i in 0..400 {
            h.push(i);
        }
        // A single round-robin pusher distributes exactly evenly.
        for sub in s.arr.subs.iter() {
            assert_eq!(sub.len(), 100);
        }
    }

    #[test]
    fn c2_balances_better_than_worst_case() {
        let s = RandomC2Stack::new(8);
        let mut h = s.handle();
        for i in 0..800 {
            h.push(i);
        }
        let counts: Vec<usize> = s.arr.subs.iter().map(|x| x.len()).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        // Power of two choices keeps the spread tight (log log n); allow
        // generous slack but catch pathological imbalance.
        assert!(max - min < 30, "c2 imbalance too high: {counts:?}");
    }

    #[test]
    fn empty_pops_are_none_for_all() {
        assert_eq!(RandomStack::<u8>::new(3).pop(), None);
        assert_eq!(RandomC2Stack::<u8>::new(3).pop(), None);
        assert_eq!(KRobinStack::<u8>::new(3, 2).pop(), None);
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(ConcurrentStack::<u8>::name(&RandomStack::<u8>::new(1)), "random");
        assert_eq!(ConcurrentStack::<u8>::name(&RandomC2Stack::<u8>::new(1)), "random-c2");
        assert_eq!(ConcurrentStack::<u8>::name(&KRobinStack::<u8>::new(1, 1)), "k-robin");
    }

    #[test]
    fn random_has_no_deterministic_bound() {
        assert_eq!(ConcurrentStack::<u8>::relaxation_bound(&RandomStack::<u8>::new(4)), None);
        assert_eq!(ConcurrentStack::<u8>::relaxation_bound(&RandomC2Stack::<u8>::new(4)), None);
    }

    #[test]
    fn width_for_k_inverts_bound() {
        for threads in [1, 2, 4, 8, 16] {
            for k in [0, 10, 100, 1000] {
                let w = KRobinStack::<u8>::width_for_k(k, threads);
                let s = KRobinStack::<u8>::new(w, threads);
                assert!(
                    ConcurrentStack::<u8>::relaxation_bound(&s).unwrap() <= k + 2 * threads,
                    "width_for_k produced an overshooting bound"
                );
            }
        }
    }

    #[test]
    fn concurrent_conservation_all_variants() {
        fn storm<S: ConcurrentStack<u64> + 'static>(stack: Arc<S>) {
            const THREADS: usize = 4;
            const PER: usize = 2_000;
            let mut joins = Vec::new();
            for t in 0..THREADS {
                let stack = Arc::clone(&stack);
                joins.push(stack2d::sync::thread::spawn(move || {
                    let mut h = stack.handle();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        h.push((t * PER + i) as u64);
                        if i % 2 == 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                }));
            }
            let mut all: Vec<u64> = Vec::new();
            for j in joins {
                all.extend(j.join().unwrap());
            }
            let mut h = stack.handle();
            while let Some(v) = h.pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, (0..(THREADS * PER) as u64).collect::<Vec<_>>());
        }
        storm(Arc::new(RandomStack::new(4)));
        storm(Arc::new(RandomC2Stack::new(4)));
        storm(Arc::new(KRobinStack::new(4, 4)));
    }
}
