//! Coarse-grained locked stack — a correctness oracle, not a contender.
//!
//! Not part of the paper's evaluation; used by tests and the quality
//! substrate as a trivially correct strict reference implementation.

use core::fmt;

use stack2d::sync::Mutex;

use stack2d::{ConcurrentStack, StackHandle};

/// A `Mutex<Vec<T>>` stack with strict LIFO semantics.
///
/// # Examples
///
/// ```
/// use stack2d_baselines::LockedStack;
///
/// let s = LockedStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// ```
pub struct LockedStack<T> {
    items: Mutex<Vec<T>>,
}

impl<T> LockedStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        LockedStack { items: Mutex::new(Vec::new()) }
    }

    /// Pushes `value`.
    pub fn push(&self, value: T) {
        self.items.lock().push(value);
    }

    /// Pops the most recent item.
    pub fn pop(&self) -> Option<T> {
        self.items.lock().pop()
    }

    /// Exact number of resident items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl<T> Default for LockedStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for LockedStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedStack").field("len", &self.len()).finish()
    }
}

/// Stateless handle to a [`LockedStack`].
#[derive(Debug)]
pub struct LockedHandle<'s, T> {
    stack: &'s LockedStack<T>,
}

impl<T: Send> StackHandle<T> for LockedHandle<'_, T> {
    fn push(&mut self, value: T) {
        self.stack.push(value);
    }

    fn pop(&mut self) -> Option<T> {
        self.stack.pop()
    }
}

impl<T: Send> ConcurrentStack<T> for LockedStack<T> {
    type Handle<'a>
        = LockedHandle<'a, T>
    where
        T: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        LockedHandle { stack: self }
    }

    fn name(&self) -> &'static str {
        "locked"
    }

    fn relaxation_bound(&self) -> Option<usize> {
        Some(0)
    }
}

stack2d::impl_relaxed_ops_for_stack!(LockedStack);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let s = LockedStack::new();
        for i in 0..100 {
            s.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn len_tracks() {
        let s = LockedStack::new();
        assert!(s.is_empty());
        s.push(1);
        s.push(2);
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn trait_metadata() {
        let s: LockedStack<u8> = LockedStack::new();
        assert_eq!(ConcurrentStack::<u8>::name(&s), "locked");
        assert_eq!(ConcurrentStack::<u8>::relaxation_bound(&s), Some(0));
    }
}
