//! The k-segment stack — the k-out-of-order relaxed baseline of Figures 1
//! and 2, after Henzinger, Kirsch, Payer, Sezgin, Sokolova, *Quantitative
//! relaxation of concurrent data structures* (POPL 2013).
//!
//! The stack is a linked list of **segments** of `k` slots; all operations
//! go through the topmost segment. A push CASes its item into any empty
//! slot of the top segment, appending a fresh segment when it is full; a pop
//! CASes an item out of any occupied slot, unlinking the segment when it is
//! empty (unless it is the last one). Any of the top `k` items can thus be
//! returned, giving k-out-of-order semantics with bound `k - 1` per segment
//! boundary — the implementation reports `k` as its bound, matching how the
//! paper parameterizes it.
//!
//! Segment removal uses a *sticky* deleted-flag protocol: a remover that
//! finds the top segment empty (with a successor) marks it deleted —
//! permanently — rescans, and unlinks if still empty. Pushes never commit
//! into a flagged segment: one that raced a flagging takes its item back
//! (if the take-back fails, a pop already got the item and the push
//! stands), and pushes that find a flagged top bury it under a fresh
//! segment instead; pops keep draining flagged segments until they can be
//! unlinked. Stickiness is what makes racing removers safe: a transient
//! flag (set, rescan, clear on finding an item) would let one remover's
//! clear overlap another remover's unlink window, un-protecting a
//! concurrent push commit — an item-loss race the stress tests caught in
//! an earlier revision.

use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use stack2d::sync::atomic::{AtomicBool, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};

use stack2d::rng::HopRng;
use stack2d::{ConcurrentStack, StackHandle};

struct Item<T> {
    value: ManuallyDrop<T>,
}

struct Segment<T> {
    slots: Box<[Atomic<Item<T>>]>,
    /// Next segment toward the bottom of the stack; immutable after
    /// creation.
    next: Atomic<Segment<T>>,
    /// Set while a remover is trying to unlink this segment.
    deleted: AtomicBool,
}

impl<T> Segment<T> {
    fn new(k: usize, next: Shared<'_, Segment<T>>) -> Owned<Segment<T>> {
        Owned::new(Segment {
            slots: (0..k).map(|_| Atomic::null()).collect(),
            next: Atomic::from(next.as_raw()),
            deleted: AtomicBool::new(false),
        })
    }
}

/// The k-out-of-order segmented stack.
///
/// # Examples
///
/// ```
/// use stack2d_baselines::KSegmentStack;
///
/// let s = KSegmentStack::new(4);
/// for i in 0..10 {
///     s.push(i);
/// }
/// let mut got: Vec<i32> = std::iter::from_fn(|| s.pop()).collect();
/// got.sort();
/// assert_eq!(got, (0..10).collect::<Vec<_>>());
/// ```
pub struct KSegmentStack<T> {
    top: Atomic<Segment<T>>,
    k: usize,
}

// SAFETY: segments and items are owned by the stack and values only cross
// threads by moving out, so `T: Send` is the full requirement (the raw
// pointers inside segments are what suppress the auto-impl).
unsafe impl<T: Send> Send for KSegmentStack<T> {}
// SAFETY: as above — shared access is mediated by slot/top CASes.
unsafe impl<T: Send> Sync for KSegmentStack<T> {}

impl<T> KSegmentStack<T> {
    /// Creates a stack whose segments hold `k` slots.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "segment size k must be positive");
        // SAFETY: construction is single-threaded — nothing else can touch
        // the stack yet, satisfying the unprotected guard's exclusivity.
        let guard = unsafe { epoch::unprotected() };
        let first = Segment::new(k, Shared::null()).into_shared(guard);
        KSegmentStack { top: Atomic::from(first.as_raw()), k }
    }

    /// The segment width `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the stack is empty at this instant (scans the top segment
    /// chain).
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let mut seg = self.top.load(Ordering::Acquire, &guard);
        // SAFETY: the epoch guard keeps every reachable segment alive while
        // we walk the chain.
        while let Some(s) = unsafe { seg.as_ref() } {
            if s.slots.iter().any(|slot| !slot.load(Ordering::Acquire, &guard).is_null()) {
                return false;
            }
            seg = s.next.load(Ordering::Acquire, &guard);
        }
        true
    }

    /// Pushes through a temporary handle.
    pub fn push(&self, value: T)
    where
        T: Send,
    {
        self.handle().push(value);
    }

    /// Pops through a temporary handle.
    pub fn pop(&self) -> Option<T>
    where
        T: Send,
    {
        self.handle().pop()
    }

    /// Scans `seg` for an occupied slot starting at `start`; attempts to
    /// take the item. Returns `Ok(Some)` on success, `Ok(None)` if the whole
    /// segment was empty, `Err(())` on a lost race.
    ///
    /// Slot operations are `SeqCst`: the push-commit/flag-check and
    /// flag-set/rescan pairs form a store-buffering pattern, and at least
    /// one side must observe the other for segment removal to be safe.
    fn try_pop_from(&self, seg: &Segment<T>, start: usize, guard: &Guard) -> Result<Option<T>, ()> {
        let k = self.k;
        let mut saw_item = false;
        for off in 0..k {
            let i = (start + off) % k;
            let item = seg.slots[i].load(Ordering::SeqCst, guard);
            if item.is_null() {
                continue;
            }
            saw_item = true;
            if seg.slots[i]
                .compare_exchange(item, Shared::null(), Ordering::SeqCst, Ordering::SeqCst, guard)
                .is_ok()
            {
                // SAFETY: winning the slot CAS grants the unique right to
                // consume the item (alive under `guard`); `value` is
                // `ManuallyDrop`, so the deferred deallocation won't
                // double-drop it.
                let value = unsafe { ptr::read(&*item.deref().value) };
                // SAFETY: our CAS emptied the slot; only the winner retires
                // the item, exactly once.
                unsafe { guard.defer_destroy(item) };
                return Ok(Some(value));
            }
        }
        if saw_item {
            Err(())
        } else {
            Ok(None)
        }
    }

    /// Whether every slot of `seg` is observed empty in one sweep.
    fn scan_is_empty(&self, seg: &Segment<T>, guard: &Guard) -> bool {
        seg.slots.iter().all(|s| s.load(Ordering::SeqCst, guard).is_null())
    }
}

impl<T> fmt::Debug for KSegmentStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KSegmentStack").field("k", &self.k).finish()
    }
}

impl<T> Drop for KSegmentStack<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access, satisfying the
        // unprotected guard's contract; occupied slots hold initialized
        // values exactly once, freed here along with their segments.
        unsafe {
            let guard = epoch::unprotected();
            let mut seg = self.top.load(Ordering::Relaxed, guard);
            while !seg.is_null() {
                let owned = seg.into_owned();
                let boxed = owned.into_box();
                for slot in boxed.slots.iter() {
                    let item = slot.load(Ordering::Relaxed, guard);
                    if !item.is_null() {
                        let mut it = item.into_owned().into_box();
                        ManuallyDrop::drop(&mut it.value);
                    }
                }
                seg = boxed.next.load(Ordering::Relaxed, guard);
            }
        }
    }
}

/// Per-thread handle to a [`KSegmentStack`] (carries the slot-scan RNG).
pub struct KSegmentHandle<'s, T> {
    stack: &'s KSegmentStack<T>,
    rng: HopRng,
}

impl<T> fmt::Debug for KSegmentHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KSegmentHandle").finish_non_exhaustive()
    }
}

impl<T: Send> StackHandle<T> for KSegmentHandle<'_, T> {
    fn push(&mut self, value: T) {
        let stack = self.stack;
        let k = stack.k;
        let guard = epoch::pin();
        let mut item = Owned::new(Item { value: ManuallyDrop::new(value) });
        'retry: loop {
            let top = stack.top.load(Ordering::Acquire, &guard);
            // SAFETY: top is never null (construction installs a segment and
            // unlinking requires a non-null successor); alive under `guard`.
            let seg = unsafe { top.deref() };
            if seg.deleted.load(Ordering::Acquire) {
                // Flagged segments never take new items (the flag is
                // sticky). Help unlink if it drained, otherwise bury it
                // under a fresh segment.
                let next = seg.next.load(Ordering::Acquire, &guard);
                if !next.is_null() && stack.scan_is_empty(seg, &guard) {
                    if stack
                        .top
                        .compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire, &guard)
                        .is_ok()
                    {
                        // SAFETY: our CAS unlinked the drained segment; only
                        // the winner retires it, exactly once.
                        unsafe { guard.defer_destroy(top) };
                    }
                } else {
                    let fresh = Segment::new(k, top);
                    let _ = stack.top.compare_exchange(
                        top,
                        fresh,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        &guard,
                    );
                }
                continue;
            }
            let start = self.rng.bounded(k);
            for off in 0..k {
                let i = (start + off) % k;
                let slot = &seg.slots[i];
                if slot.load(Ordering::SeqCst, &guard).is_null() {
                    let shared = item.into_shared(&guard);
                    match slot.compare_exchange(
                        Shared::null(),
                        shared,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        &guard,
                    ) {
                        Ok(_) => {
                            // Committed — but a remover may have flagged the
                            // segment in between. Take the item back if so.
                            if seg.deleted.load(Ordering::SeqCst)
                                && slot
                                    .compare_exchange(
                                        shared,
                                        Shared::null(),
                                        Ordering::SeqCst,
                                        Ordering::SeqCst,
                                        &guard,
                                    )
                                    .is_ok()
                            {
                                // SAFETY: the take-back CAS emptied the
                                // slot, so we own the item exclusively
                                // again.
                                item = unsafe { shared.into_owned() };
                                continue 'retry;
                            }
                            // Either no removal raced us, or a pop already
                            // took the item: the push stands.
                            return;
                        }
                        Err(e) => {
                            // SAFETY: the failed CAS never published the
                            // item, so we still own it exclusively.
                            item = unsafe { e.new.into_owned() };
                        }
                    }
                }
            }
            // Top segment full: append a fresh one.
            let fresh = Segment::new(k, top);
            let _ =
                stack.top.compare_exchange(top, fresh, Ordering::AcqRel, Ordering::Acquire, &guard);
            // Whether we or a racer installed it, retry on the new top.
        }
    }

    fn pop(&mut self) -> Option<T> {
        let stack = self.stack;
        let guard = epoch::pin();
        loop {
            let top = stack.top.load(Ordering::Acquire, &guard);
            // SAFETY: top is never null (see push); alive under `guard`.
            let seg = unsafe { top.deref() };
            let start = self.rng.bounded(stack.k);
            match stack.try_pop_from(seg, start, &guard) {
                Ok(Some(v)) => return Some(v),
                Err(()) => continue, // lost a slot race; rescan
                Ok(None) => {}
            }
            // Top segment scanned empty.
            let next = seg.next.load(Ordering::Acquire, &guard);
            if next.is_null() {
                // Last segment: the stack is empty.
                return None;
            }
            // Flag the segment — permanently (see the module docs for why
            // the flag must be sticky) — then rescan and unlink if still
            // empty. Items that slipped in before the flag are popped as
            // usual; their segment just never takes pushes again and will
            // be unlinked once it drains.
            seg.deleted.store(true, Ordering::SeqCst);
            match stack.try_pop_from(seg, 0, &guard) {
                Ok(Some(v)) => return Some(v),
                Err(()) => continue,
                Ok(None) => {}
            }
            if stack
                .top
                .compare_exchange(top, next, Ordering::AcqRel, Ordering::Acquire, &guard)
                .is_ok()
            {
                // SAFETY: our CAS unlinked the flagged, drained segment;
                // only the winner retires it, exactly once.
                unsafe { guard.defer_destroy(top) };
            }
        }
    }
}

impl<T: Send> ConcurrentStack<T> for KSegmentStack<T> {
    type Handle<'a>
        = KSegmentHandle<'a, T>
    where
        T: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        KSegmentHandle { stack: self, rng: HopRng::from_thread() }
    }

    fn handle_seeded(&self, seed: u64) -> Self::Handle<'_> {
        KSegmentHandle { stack: self, rng: HopRng::seeded(seed) }
    }

    fn name(&self) -> &'static str {
        "k-segment"
    }

    /// A pop returns one of the (at most) `k` items of the top segment, so
    /// it can be at most `k - 1` positions out of order; `k = 1` is strict.
    fn relaxation_bound(&self) -> Option<usize> {
        Some(self.k - 1)
    }
}

stack2d::impl_relaxed_ops_for_stack!(KSegmentStack);

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::sync::Arc;
    use std::collections::HashSet;

    #[test]
    fn k_one_is_strict_lifo() {
        let s = KSegmentStack::new(1);
        let mut h = s.handle();
        for i in 0..200 {
            h.push(i);
        }
        for i in (0..200).rev() {
            assert_eq!(h.pop(), Some(i), "k=1 must be strict LIFO");
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KSegmentStack::<u8>::new(0);
    }

    #[test]
    fn all_items_recovered() {
        let s = KSegmentStack::new(8);
        let mut h = s.handle();
        for i in 0..1_000 {
            h.push(i);
        }
        let mut seen = HashSet::new();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 1_000);
        assert!(s.is_empty());
    }

    #[test]
    fn segments_appear_and_disappear() {
        let s = KSegmentStack::new(2);
        let mut h = s.handle();
        // 10 items over k=2 forces several segment appends...
        for i in 0..10 {
            h.push(i);
        }
        // ...and draining forces removals, back to a single empty segment.
        while h.pop().is_some() {}
        assert!(s.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn pop_is_within_k_of_top_single_thread() {
        // Single-threaded k-out-of-order check: popping position error is
        // bounded by k (items in the top segment are unordered).
        let k = 4;
        let s = KSegmentStack::new(k);
        let mut h = s.handle();
        let n: usize = 400;
        for i in 0..n {
            h.push(i);
        }
        // Strict stack order would be n-1, n-2, ...; the segmented stack may
        // permute within a window of k.
        let mut expected_top = n - 1;
        while let Some(v) = h.pop() {
            let err = expected_top.abs_diff(v);
            assert!(err <= k, "pop {v} is {err} > k={k} from strict top {expected_top}");
            expected_top = expected_top.saturating_sub(1);
        }
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        const THREADS: usize = 4;
        const PER: usize = 4_000;
        let s = Arc::new(KSegmentStack::new(16));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            joins.push(stack2d::sync::thread::spawn(move || {
                let mut h = s.handle();
                let mut got = Vec::new();
                for i in 0..PER {
                    h.push((t * PER + i) as u64);
                    if i % 2 == 1 {
                        if let Some(v) = h.pop() {
                            got.push(v);
                        }
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = Vec::new();
        for j in joins {
            all.extend(j.join().unwrap());
        }
        let mut h = s.handle();
        while let Some(v) = h.pop() {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, (0..(THREADS * PER) as u64).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_drain_storm_over_segment_boundaries() {
        // Small k maximizes segment append/unlink churn.
        let s = Arc::new(KSegmentStack::new(2));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            joins.push(stack2d::sync::thread::spawn(move || {
                let mut h = s.handle();
                let mut balance: i64 = 0;
                for i in 0..10_000u64 {
                    h.push(i);
                    balance += 1;
                    if h.pop().is_some() {
                        balance -= 1;
                    }
                }
                balance
            }));
        }
        let pushed_minus_popped: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let mut h = s.handle();
        let mut rest = 0i64;
        while h.pop().is_some() {
            rest += 1;
        }
        assert_eq!(rest, pushed_minus_popped);
    }

    #[test]
    fn drop_releases_resident_items() {
        use stack2d::sync::atomic::AtomicUsize as AU;
        struct Canary(Arc<AU>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AU::new(0));
        {
            let s = KSegmentStack::new(3);
            let mut h = s.handle();
            for _ in 0..20 {
                h.push(Canary(drops.clone()));
            }
            drop(h.pop());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn trait_metadata() {
        let s: KSegmentStack<u8> = KSegmentStack::new(7);
        assert_eq!(ConcurrentStack::<u8>::name(&s), "k-segment");
        assert_eq!(ConcurrentStack::<u8>::relaxation_bound(&s), Some(6));
        assert_eq!(s.k(), 7);
    }
}
