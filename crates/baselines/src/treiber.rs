//! The Treiber stack [Treiber 1986] — the classic lock-free stack and the
//! strict-semantics baseline of the paper's Figure 2.
//!
//! A single `head` pointer CASed by every operation: maximal contention,
//! strict LIFO. The 2D-Stack degenerates to (a count-carrying variant of)
//! this structure at `width = 1`.

use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use stack2d::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};
use crossbeam_utils::Backoff;

use stack2d::{ConcurrentStack, StackHandle};

struct Node<T> {
    value: ManuallyDrop<T>,
    next: *const Node<T>,
}

/// A strict lock-free LIFO stack with a single top-of-stack access point.
///
/// # Examples
///
/// ```
/// use stack2d_baselines::TreiberStack;
///
/// let s = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

// SAFETY: the stack owns its nodes and hands values across threads only by
// moving them out, so `T: Send` is the full requirement (the raw `next`
// pointers are what suppress the auto-impl).
unsafe impl<T: Send> Send for TreiberStack<T> {}
// SAFETY: as above — shared access is mediated by the head CAS.
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        TreiberStack { head: Atomic::null() }
    }

    /// Pushes `value`; retries with exponential backoff under contention.
    pub fn push(&self, value: T) {
        let guard = epoch::pin();
        let mut node = Owned::new(Node { value: ManuallyDrop::new(value), next: ptr::null() });
        let backoff = Backoff::new();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            node.next = head.as_raw();
            match self.head.compare_exchange(
                head,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => return,
                Err(e) => {
                    node = e.new;
                    backoff.spin();
                }
            }
        }
    }

    /// Pops the top item; `None` when the stack is empty.
    pub fn pop(&self) -> Option<T> {
        let guard = epoch::pin();
        let backoff = Backoff::new();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: the epoch guard keeps any node reachable from `head`
            // alive for the duration of this attempt.
            let node = unsafe { head.as_ref() }?;
            let next = Shared::from(node.next);
            match self.head.compare_exchange(
                head,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    // SAFETY: winning the pop CAS grants the unique right to
                    // consume this node's value; `value` is `ManuallyDrop`,
                    // so the deferred deallocation won't double-drop it.
                    let value = unsafe { ptr::read(&*node.value) };
                    // SAFETY: our CAS unlinked the node; only the winner
                    // retires it, exactly once.
                    unsafe { guard.defer_destroy(head) };
                    return Some(value);
                }
                Err(_) => backoff.spin(),
            }
        }
    }

    /// Whether the stack is empty at this instant.
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack").field("empty", &self.is_empty()).finish()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees exclusive access, satisfying the
        // unprotected guard's contract; every node still in the list holds
        // an initialized value exactly once, freed here.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head.load(Ordering::Relaxed, guard).as_raw();
            while !cur.is_null() {
                let mut boxed = Box::from_raw(cur as *mut Node<T>);
                ManuallyDrop::drop(&mut boxed.value);
                cur = boxed.next;
            }
        }
    }
}

/// Stateless per-thread handle for [`TreiberStack`].
#[derive(Debug)]
pub struct TreiberHandle<'s, T> {
    stack: &'s TreiberStack<T>,
}

impl<T: Send> StackHandle<T> for TreiberHandle<'_, T> {
    fn push(&mut self, value: T) {
        self.stack.push(value);
    }

    fn pop(&mut self) -> Option<T> {
        self.stack.pop()
    }
}

impl<T: Send> ConcurrentStack<T> for TreiberStack<T> {
    type Handle<'a>
        = TreiberHandle<'a, T>
    where
        T: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        TreiberHandle { stack: self }
    }

    fn name(&self) -> &'static str {
        "treiber"
    }

    fn relaxation_bound(&self) -> Option<usize> {
        Some(0)
    }
}

stack2d::impl_relaxed_ops_for_stack!(TreiberStack);

#[cfg(test)]
mod tests {
    use super::*;
    use stack2d::sync::atomic::AtomicUsize;
    use stack2d::sync::Arc;

    #[test]
    fn lifo_order() {
        let s = TreiberStack::new();
        for i in 0..1000 {
            s.push(i);
        }
        for i in (0..1000).rev() {
            assert_eq!(s.pop(), Some(i));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn empty_pop_is_none() {
        let s: TreiberStack<u8> = TreiberStack::new();
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn concurrent_item_conservation() {
        const THREADS: usize = 4;
        const PER: usize = 5_000;
        let s = Arc::new(TreiberStack::new());
        let popped = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let s = Arc::clone(&s);
            let popped = Arc::clone(&popped);
            joins.push(stack2d::sync::thread::spawn(move || {
                for i in 0..PER {
                    s.push(t * PER + i);
                    if i % 2 == 0 && s.pop().is_some() {
                        popped.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut rest = 0;
        while s.pop().is_some() {
            rest += 1;
        }
        assert_eq!(popped.load(Ordering::SeqCst) + rest, THREADS * PER);
    }

    #[test]
    fn drop_releases_items() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s = TreiberStack::new();
            for _ in 0..25 {
                s.push(Canary(drops.clone()));
            }
            drop(s.pop());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 25);
    }

    #[test]
    fn trait_impl_reports_strict_bound() {
        let s: TreiberStack<u8> = TreiberStack::new();
        assert_eq!(ConcurrentStack::<u8>::name(&s), "treiber");
        assert_eq!(ConcurrentStack::<u8>::relaxation_bound(&s), Some(0));
    }
}
