//! Coarse-grained locked FIFO queue — the queue-side comparison point.
//!
//! The paper's evaluation only compares stacks, but since PR 3 the window
//! design also drives a [`Queue2D`](stack2d::Queue2D). This baseline gives
//! the queue scenarios the analogue of [`LockedStack`](crate::LockedStack):
//! a trivially correct strict-FIFO reference (`Mutex<VecDeque>`) that the
//! generic [`RelaxedOps`] workload runner can drive side by side with the
//! relaxed queue.

use core::fmt;
use std::collections::VecDeque;

use stack2d::sync::Mutex;

use stack2d::{OpsHandle, RelaxedOps};

/// A `Mutex<VecDeque<T>>` queue with strict FIFO semantics.
///
/// # Examples
///
/// ```
/// use stack2d_baselines::LockedQueue;
///
/// let q = LockedQueue::new();
/// q.enqueue(1);
/// q.enqueue(2);
/// assert_eq!(q.dequeue(), Some(1));
/// ```
pub struct LockedQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> LockedQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LockedQueue { items: Mutex::new(VecDeque::new()) }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, value: T) {
        self.items.lock().push_back(value);
    }

    /// Removes the item at the head.
    pub fn dequeue(&self) -> Option<T> {
        self.items.lock().pop_front()
    }

    /// Exact number of resident items.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl<T> Default for LockedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for LockedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedQueue").field("len", &self.len()).finish()
    }
}

/// Stateless handle to a [`LockedQueue`].
#[derive(Debug)]
pub struct LockedQueueHandle<'q, T> {
    queue: &'q LockedQueue<T>,
}

impl<T: Send> OpsHandle<T> for LockedQueueHandle<'_, T> {
    fn produce(&mut self, value: T) {
        self.queue.enqueue(value);
    }

    fn consume(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send> RelaxedOps<T> for LockedQueue<T> {
    type Handle<'a>
        = LockedQueueHandle<'a, T>
    where
        T: 'a;

    fn ops_handle(&self) -> Self::Handle<'_> {
        LockedQueueHandle { queue: self }
    }

    fn name(&self) -> &'static str {
        "locked-queue"
    }

    fn relaxation_bound(&self) -> Option<usize> {
        Some(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = LockedQueue::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn len_tracks() {
        let q = LockedQueue::new();
        assert!(q.is_empty());
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.len(), 2);
        q.dequeue();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn trait_metadata_and_generic_drive() {
        fn churn<S: RelaxedOps<u64>>(s: &S) -> usize {
            let mut h = s.ops_handle_seeded(3);
            for i in 0..64 {
                h.produce(i);
            }
            let mut n = 0;
            while h.consume().is_some() {
                n += 1;
            }
            n
        }
        let q: LockedQueue<u64> = LockedQueue::new();
        assert_eq!(churn(&q), 64);
        assert_eq!(RelaxedOps::<u64>::name(&q), "locked-queue");
        assert_eq!(RelaxedOps::<u64>::relaxation_bound(&q), Some(0));
    }
}
