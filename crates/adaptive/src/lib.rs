//! # stack2d-adaptive — the elastic relaxation runtime
//!
//! The 2D-Stack paper's pitch is a stack that *continuously relaxes
//! semantics for better performance* — yet its parameters are chosen
//! offline, per workload. This crate closes the loop at runtime: a
//! [`Controller`] samples an elastic structure's [`MetricsSnapshot`]
//! deltas on a cadence and decides new window [`Params`], which the
//! driver installs through [`ElasticTarget::retune`] — widening the
//! window when contention (lost descriptor CASes) eats throughput,
//! tightening it back when load drops, always subject to a user-supplied
//! relaxation budget `max_k`.
//!
//! Everything is generic over [`ElasticTarget`], the contract implemented
//! by all three windowed structures ([`Stack2D`], [`Queue2D`],
//! [`Counter2D`]) — the paper's §5 generalization applied to the elastic
//! runtime itself. Three pieces:
//!
//! * [`controller`] — the [`Controller`] trait and [`AimdController`], the
//!   default policy: multiplicative width increase under contention,
//!   additive decrease in calm periods (the inverse of classic AIMD,
//!   because here the scarce resource is the *k budget*, which should be
//!   spent only while contention demands it), plus a walk of the vertical
//!   dimension (`depth`/`shift`) once width saturates at capacity with
//!   budget headroom left;
//! * [`runtime`] — [`Elastic`], the deterministic inline driver
//!   (`tick()` when *you* decide), and [`ElasticRunner`], a background
//!   thread ticking on a fixed cadence; both record [`RetuneEvent`]s into
//!   a bounded [`RetuneLog`] (oldest evicted, evictions counted) and, when
//!   the target carries a telemetry recorder, emit every tick's
//!   observation→decision→outcome span through it;
//! * [`managed`] — [`Managed`], the RAII guard owning the background
//!   runner, built in one chain from a structure builder via
//!   [`AdaptiveBuilder::adaptive`] — the deployment-shape API that
//!   replaces the manual `Arc` + spawn + stop wiring;
//! * the **k-budget invariant**: every parameter set a controller emits
//!   satisfies `k_bound <= max_k`, and because a width shrink keeps the
//!   published bound at the wide value until the retired tail is provably
//!   drained ([`ElasticTarget::try_commit_shrink`]), the *instantaneous*
//!   bound observed by the quality checker never exceeds `max_k` either.
//!
//! ```
//! use stack2d::{Params, Stack2D};
//! use stack2d_adaptive::{AimdController, Elastic};
//!
//! let stack: Stack2D<u64> = Stack2D::builder().params(Params::new(1, 1, 1).unwrap()).elastic_capacity(64).build().unwrap();
//! // Budget k <= 200, sampled manually after each batch of work.
//! let mut elastic = Elastic::new(&stack, AimdController::new(200));
//! for round in 0..4 {
//!     let mut h = stack.handle();
//!     for i in 0..1_000 {
//!         h.push(round * 1_000 + i);
//!     }
//!     elastic.tick();
//! }
//! assert!(stack.k_bound() <= 200, "the k budget is a hard ceiling");
//! ```
//!
//! [`MetricsSnapshot`]: stack2d::MetricsSnapshot
//! [`Params`]: stack2d::Params
//! [`ElasticTarget`]: stack2d::ElasticTarget
//! [`ElasticTarget::retune`]: stack2d::ElasticTarget::retune
//! [`ElasticTarget::try_commit_shrink`]: stack2d::ElasticTarget::try_commit_shrink
//! [`Stack2D`]: stack2d::Stack2D
//! [`Queue2D`]: stack2d::Queue2D
//! [`Counter2D`]: stack2d::Counter2D

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod managed;
pub mod runtime;

pub use controller::{
    max_depth_for_budget, max_width_for_budget, AimdController, Controller, Observation,
};
pub use managed::{AdaptiveBuilder, Managed};
pub use runtime::{
    Elastic, ElasticRunner, RetuneEvent, RetuneKind, RetuneLog, ScriptedController,
    DEFAULT_LOG_CAPACITY,
};
