//! # stack2d-adaptive — the elastic relaxation runtime
//!
//! The 2D-Stack paper's pitch is a stack that *continuously relaxes
//! semantics for better performance* — yet its parameters are chosen
//! offline, per workload. This crate closes the loop at runtime: a
//! [`Controller`] samples a stack's [`MetricsSnapshot`] deltas on a
//! cadence and decides new window [`Params`], which the driver installs
//! through [`Stack2D::retune`] — widening the window when contention
//! (lost descriptor CASes) eats throughput, tightening it back when load
//! drops, always subject to a user-supplied relaxation budget `max_k`.
//!
//! Three pieces:
//!
//! * [`controller`] — the [`Controller`] trait and [`AimdController`], the
//!   default policy: multiplicative width increase under contention,
//!   additive decrease in calm periods (the inverse of classic AIMD,
//!   because here the scarce resource is the *k budget*, which should be
//!   spent only while contention demands it);
//! * [`runtime`] — [`Elastic`], the deterministic inline driver
//!   (`tick()` when *you* decide), and [`ElasticRunner`], a background
//!   thread ticking on a fixed cadence; both record a [`RetuneEvent`] log;
//! * the **k-budget invariant**: every parameter set a controller emits
//!   satisfies `k_bound <= max_k`, and because a width shrink keeps the
//!   published bound at the wide value until the retired tail is provably
//!   drained ([`Stack2D::try_commit_shrink`]), the *instantaneous* bound
//!   observed by the quality checker never exceeds `max_k` either.
//!
//! ```
//! use stack2d::{Params, Stack2D};
//! use stack2d_adaptive::{AimdController, Elastic};
//!
//! let stack: Stack2D<u64> = Stack2D::elastic(Params::new(1, 1, 1).unwrap(), 64);
//! // Budget k <= 200, sampled manually after each batch of work.
//! let mut elastic = Elastic::new(&stack, AimdController::new(200));
//! for round in 0..4 {
//!     let mut h = stack.handle();
//!     for i in 0..1_000 {
//!         h.push(round * 1_000 + i);
//!     }
//!     elastic.tick();
//! }
//! assert!(stack.k_bound() <= 200, "the k budget is a hard ceiling");
//! ```
//!
//! [`MetricsSnapshot`]: stack2d::MetricsSnapshot
//! [`Params`]: stack2d::Params
//! [`Stack2D::retune`]: stack2d::Stack2D::retune
//! [`Stack2D::try_commit_shrink`]: stack2d::Stack2D::try_commit_shrink

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod runtime;

pub use controller::{max_width_for_budget, AimdController, Controller, Observation};
pub use runtime::{Elastic, ElasticRunner, RetuneEvent, RetuneKind, ScriptedController};
