//! The elastic drivers: sampling, retuning and the per-retune event log.
//!
//! [`Elastic`] is the deterministic inline driver — the caller decides when
//! to [`tick`](Elastic::tick) (tests, phase boundaries, harness loops).
//! [`ElasticRunner`] wraps it in a background thread ticking on a fixed
//! cadence, the deployment shape: workers never see the controller, they
//! just observe the window descriptor changing under them.
//!
//! Both drivers are generic over [`ElasticTarget`], so the same machinery
//! retunes a [`Stack2D`](stack2d::Stack2D), a
//! [`Queue2D`](stack2d::Queue2D) (whose put and get windows move
//! together) or a [`Counter2D`](stack2d::Counter2D).

use stack2d::sync::atomic::{AtomicBool, Ordering};
use stack2d::sync::thread::JoinHandle;
use stack2d::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use stack2d::telemetry::ControlOutcome;
use stack2d::{ElasticTarget, MetricsSnapshot, Params, WindowInfo};

use crate::controller::{Controller, Observation};

/// Why a descriptor swing happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetuneKind {
    /// The controller widened the window.
    Grow,
    /// The controller tightened the window (width shrink installed; pops
    /// keep covering the old span until the matching [`RetuneKind::Commit`]).
    Shrink,
    /// The controller changed depth/shift at constant width.
    Vertical,
    /// A pending width shrink committed: the retired tail was proven
    /// drained and the relaxation bound tightened.
    Commit,
}

/// One entry of the retune log: the window that took effect, when, and why.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetuneEvent {
    /// Time since the driver started.
    pub at: Duration,
    /// Cumulative completed stack operations at decision time.
    pub ops: u64,
    /// Generation of the descriptor that took effect.
    pub generation: u64,
    /// New push-side width.
    pub width: usize,
    /// Sub-stacks pops cover (exceeds `width` while a shrink is pending).
    pub pop_width: usize,
    /// New depth.
    pub depth: usize,
    /// New shift.
    pub shift: usize,
    /// The instantaneous relaxation bound of the new descriptor.
    pub k_bound: usize,
    /// What kind of swing this was.
    pub kind: RetuneKind,
}

impl RetuneEvent {
    fn from_info(info: WindowInfo, kind: RetuneKind, at: Duration, ops: u64) -> Self {
        RetuneEvent {
            at,
            ops,
            generation: info.generation(),
            width: info.width(),
            pop_width: info.pop_width(),
            depth: info.depth(),
            shift: info.shift(),
            k_bound: info.k_bound(),
            kind,
        }
    }
}

/// Default [`RetuneLog`] capacity: a retune is a cold-path event (one per
/// controller cadence at most), so a thousand entries cover any realistic
/// run while bounding a runaway controller's memory.
pub const DEFAULT_LOG_CAPACITY: usize = 1024;

/// A bounded retune log: keeps the most recent `capacity` events and
/// counts what it had to evict — the same overflow contract as the
/// telemetry event ring (drops are *counted, never silent*, and never
/// grow memory without bound).
#[derive(Debug, Clone)]
pub struct RetuneLog {
    buf: std::collections::VecDeque<RetuneEvent>,
    capacity: usize,
    dropped: u64,
}

impl RetuneLog {
    /// An empty log evicting beyond `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RetuneLog {
            buf: std::collections::VecDeque::with_capacity(capacity.min(64)),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: RetuneEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &RetuneEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted after the log filled (oldest-first eviction).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The eviction threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events as a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<RetuneEvent> {
        self.buf.iter().copied().collect()
    }

    fn into_vec(self) -> Vec<RetuneEvent> {
        self.buf.into()
    }
}

impl Default for RetuneLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_LOG_CAPACITY)
    }
}

impl<'a> IntoIterator for &'a RetuneLog {
    type Item = &'a RetuneEvent;
    type IntoIter = std::collections::vec_deque::Iter<'a, RetuneEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// The inline elastic driver: owns a [`Controller`], samples metrics
/// deltas on every [`tick`](Elastic::tick), applies its decisions through
/// [`ElasticTarget::retune`] / [`ElasticTarget::try_commit_shrink`], and
/// logs every swing as a [`RetuneEvent`].
#[derive(Debug)]
pub struct Elastic<'s, S, C> {
    target: &'s S,
    controller: C,
    max_k: usize,
    started: Instant,
    last_metrics: MetricsSnapshot,
    last_tick: Instant,
    events: RetuneLog,
}

impl<'s, S: ElasticTarget, C: Controller> Elastic<'s, S, C> {
    /// A driver for `target` with no budget of its own (the controller's
    /// budget governs); see [`Elastic::budget`].
    pub fn new(target: &'s S, controller: C) -> Self {
        let now = Instant::now();
        Elastic {
            target,
            controller,
            max_k: usize::MAX,
            started: now,
            last_metrics: target.metrics(),
            last_tick: now,
            events: RetuneLog::default(),
        }
    }

    /// Caps the relaxation budget advertised to the controller (the
    /// effective budget is the minimum of this and whatever the policy
    /// enforces itself).
    #[must_use]
    pub fn budget(mut self, max_k: usize) -> Self {
        self.max_k = max_k;
        self
    }

    /// Caps the retune log at `capacity` events (default
    /// [`DEFAULT_LOG_CAPACITY`]); beyond it the oldest entries are evicted
    /// and counted in [`RetuneLog::dropped`].
    #[must_use]
    pub fn log_capacity(mut self, capacity: usize) -> Self {
        self.events = RetuneLog::with_capacity(capacity);
        self
    }

    /// The driven structure.
    pub fn target(&self) -> &'s S {
        self.target
    }

    /// The controller (e.g. to inspect or adjust thresholds).
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// The retune log: every descriptor swing this driver performed, in
    /// order (bounded — see [`Elastic::log_capacity`]).
    pub fn events(&self) -> &RetuneLog {
        &self.events
    }

    /// Consumes the driver, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<RetuneEvent> {
        self.events.into_vec()
    }

    /// One control step: commit any matured shrink, sample the metrics
    /// delta since the previous tick, ask the controller, and apply its
    /// decision. Returns the last event this tick produced, if any.
    ///
    /// When the target carries a telemetry sink
    /// ([`ElasticTarget::recorder`]), every tick emits its full
    /// observation→decision→outcome triple through it — including pure
    /// holds, so the event stream shows the controller *looking* even when
    /// it does nothing.
    pub fn tick(&mut self) -> Option<RetuneEvent> {
        let mut produced = None;
        let recorder = self.target.recorder();
        let snapshot = self.target.metrics();
        let at = self.started.elapsed();
        // A matured shrink commits before the next decision so the
        // controller sees the tightened bound.
        let mut outcome = ControlOutcome::Hold;
        if let Some(info) = self.target.try_commit_shrink() {
            let ev = RetuneEvent::from_info(info, RetuneKind::Commit, at, snapshot.ops);
            self.events.push(ev);
            produced = Some(ev);
            outcome = ControlOutcome::Committed;
        }
        let now = Instant::now();
        let obs = Observation {
            interval: now.duration_since(self.last_tick),
            delta: snapshot.delta_since(&self.last_metrics),
            window: self.target.window(),
            capacity: self.target.capacity(),
            max_k: self.max_k,
        };
        if let Some(r) = recorder {
            r.control_observation(
                obs.interval.as_nanos().min(u64::MAX as u128) as u64,
                obs.delta,
                obs.window,
                obs.capacity,
            );
        }
        let decided = self.controller.decide(&obs);
        if let Some(r) = recorder {
            r.control_decision(decided);
        }
        if let Some(params) = decided {
            debug_assert!(
                params.k_bound() <= self.max_k,
                "controller violated the k budget: {params} > {}",
                self.max_k
            );
            match self.target.retune(params) {
                // A no-op retune (controller re-emitted the standing
                // parameters) swings nothing and bumps no generation:
                // logging it would inject a phantom event.
                Ok(info) if info.generation() == obs.window.generation() => {}
                Ok(info) => {
                    let kind = match info.width().cmp(&obs.window.width()) {
                        core::cmp::Ordering::Greater => RetuneKind::Grow,
                        core::cmp::Ordering::Less => RetuneKind::Shrink,
                        core::cmp::Ordering::Equal => RetuneKind::Vertical,
                    };
                    let ev = RetuneEvent::from_info(info, kind, at, snapshot.ops);
                    self.events.push(ev);
                    produced = Some(ev);
                    outcome = ControlOutcome::Applied;
                }
                Err(e) => {
                    outcome = ControlOutcome::Rejected;
                    debug_assert!(false, "controller exceeded target capacity: {e}");
                }
            }
        }
        if let Some(r) = recorder {
            r.control_outcome(outcome, self.target.window());
        }
        self.last_metrics = snapshot;
        self.last_tick = now;
        produced
    }
}

/// A background elastic driver: ticks an [`Elastic`] every `cadence` until
/// stopped, then hands back the event log.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use stack2d::{Params, Stack2D};
/// use stack2d_adaptive::{AimdController, ElasticRunner};
///
/// let stack = Arc::new(Stack2D::builder().params(Params::new(1, 1, 1).unwrap()).elastic_capacity(32).build().unwrap());
/// let runner = ElasticRunner::spawn(
///     Arc::clone(&stack),
///     AimdController::new(1_000),
///     Duration::from_millis(1),
/// );
/// let mut h = stack.handle();
/// for i in 0..10_000u64 {
///     h.push(i);
///     h.pop();
/// }
/// let events = runner.stop();
/// // Single-threaded load has no contention: the controller never grew.
/// assert!(events.iter().all(|e| e.k_bound <= 1_000));
/// ```
#[derive(Debug)]
pub struct ElasticRunner {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<Vec<RetuneEvent>>>,
}

impl ElasticRunner {
    /// Starts a controller thread driving `target` every `cadence`.
    pub fn spawn<S, C>(target: Arc<S>, controller: C, cadence: Duration) -> Self
    where
        S: ElasticTarget + 'static,
        C: Controller + Send + 'static,
    {
        Self::spawn_with_budget(target, controller, cadence, usize::MAX)
    }

    /// Like [`ElasticRunner::spawn`] with an explicit driver-level k
    /// budget.
    pub fn spawn_with_budget<S, C>(
        target: Arc<S>,
        controller: C,
        cadence: Duration,
        max_k: usize,
    ) -> Self
    where
        S: ElasticTarget + 'static,
        C: Controller + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = stack2d::sync::thread::spawn(move || {
            let mut elastic = Elastic::new(&*target, controller).budget(max_k);
            while !stop_flag.load(Ordering::Relaxed) {
                stack2d::sync::thread::sleep(cadence);
                elastic.tick();
            }
            // Final tick so work done right before `stop` is still seen.
            elastic.tick();
            elastic.into_events()
        });
        ElasticRunner { stop, join: Some(join) }
    }

    /// Stops the controller thread and returns its event log.
    pub fn stop(mut self) -> Vec<RetuneEvent> {
        self.stop.store(true, Ordering::Relaxed);
        self.join.take().map(|j| j.join().expect("elastic controller panicked")).unwrap_or_default()
    }
}

impl Drop for ElasticRunner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Replays a fixed decision script — handy for deterministic driver tests
/// and schedule-based experiments (each tick pops the next entry; `None`
/// entries and an exhausted script leave the window alone).
#[derive(Debug, Clone)]
pub struct ScriptedController {
    script: std::collections::VecDeque<Option<Params>>,
}

impl ScriptedController {
    /// A controller that applies `steps` in order, one per tick.
    pub fn new(steps: impl IntoIterator<Item = Option<Params>>) -> Self {
        ScriptedController { script: steps.into_iter().collect() }
    }
}

impl Controller for ScriptedController {
    fn decide(&mut self, _obs: &Observation) -> Option<Params> {
        self.script.pop_front().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::AimdController;
    use stack2d::{Counter2D, Queue2D, Stack2D};

    fn p(w: usize, d: usize, s: usize) -> Params {
        Params::new(w, d, s).unwrap()
    }

    #[test]
    fn tick_applies_script_and_logs_kinds() {
        let stack: Stack2D<u32> =
            Stack2D::builder().params(p(2, 1, 1)).elastic_capacity(16).build().unwrap();
        let script = ScriptedController::new([
            Some(p(8, 1, 1)), // grow
            None,             // hold
            Some(p(8, 2, 2)), // vertical
            Some(p(4, 2, 2)), // shrink (tail empty, commits on later ticks)
        ]);
        let mut elastic = Elastic::new(&stack, script);
        let ev = elastic.tick().expect("grow event");
        assert_eq!(ev.kind, RetuneKind::Grow);
        assert_eq!(ev.width, 8);
        assert_eq!(ev.generation, 1);
        assert!(elastic.tick().is_none(), "holds produce no event");
        let ev = elastic.tick().expect("vertical event");
        assert_eq!(ev.kind, RetuneKind::Vertical);
        assert_eq!(ev.depth, 2);
        let ev = elastic.tick().expect("shrink event");
        assert_eq!(ev.kind, RetuneKind::Shrink);
        assert_eq!(ev.width, 4);
        // The shrink on an empty tail commits after a few more ticks.
        let mut committed = None;
        for _ in 0..64 {
            if let Some(ev) = elastic.tick() {
                committed = Some(ev);
                break;
            }
        }
        let ev = committed.expect("shrink must commit on an empty tail");
        assert_eq!(ev.kind, RetuneKind::Commit);
        assert_eq!(ev.pop_width, 4);
        assert_eq!(elastic.events().len(), 4);
        assert_eq!(stack.window().width(), 4);
        assert!(!stack.window().pending_shrink());
    }

    #[test]
    fn retune_log_caps_and_counts_evictions() {
        let stack: Stack2D<u32> =
            Stack2D::builder().params(p(2, 1, 1)).elastic_capacity(16).build().unwrap();
        // Strictly growing widths: every tick swings a Grow retune.
        let script: Vec<Option<Params>> = (0..10).map(|i| Some(p(3 + i, 1, 1))).collect();
        let mut elastic =
            Elastic::new(&stack, ScriptedController::new(script.clone())).log_capacity(4);
        for _ in 0..script.len() {
            elastic.tick();
        }
        let log = elastic.events();
        assert_eq!(log.len(), 4, "log must stay at its cap");
        assert_eq!(log.capacity(), 4);
        assert_eq!(log.dropped(), 6, "evictions must be counted, not silent");
        // The *newest* events survive: generations are the last four.
        let generations: Vec<u64> = log.iter().map(|e| e.generation).collect();
        assert_eq!(generations, vec![7, 8, 9, 10]);
        assert_eq!(elastic.into_events().len(), 4);
    }

    #[test]
    fn ticks_emit_causally_ordered_decision_triples() {
        use stack2d_telemetry::{Event, Registry};
        let registry = Registry::new();
        let stack: Stack2D<u32> = Stack2D::builder()
            .params(p(2, 1, 1))
            .elastic_capacity(16)
            .recorder(registry.scope("stack"))
            .build()
            .unwrap();
        let script = ScriptedController::new([Some(p(8, 1, 1)), None]);
        let mut elastic = Elastic::new(&stack, script);
        elastic.tick(); // applied
        elastic.tick(); // hold
        let report = registry.report();
        let events = &report.scopes[0].events;
        // Two full observation→decision→outcome triples, plus the retune
        // event the structure itself emitted inside the first apply.
        let triples: Vec<&str> = events
            .iter()
            .map(|e| e.event.kind_name())
            .filter(|k| k.starts_with("control_"))
            .collect();
        assert_eq!(
            triples,
            vec![
                "control_observation",
                "control_decision",
                "control_outcome",
                "control_observation",
                "control_decision",
                "control_outcome"
            ],
            "every tick must emit its triple in causal order"
        );
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        let outcomes: Vec<_> = events
            .iter()
            .filter_map(|e| match e.event {
                Event::ControlOutcome { outcome, .. } => Some(outcome),
                _ => None,
            })
            .collect();
        use stack2d::telemetry::ControlOutcome;
        assert_eq!(outcomes, vec![ControlOutcome::Applied, ControlOutcome::Hold]);
        assert!(
            events.iter().any(|e| matches!(e.event, Event::Retune { .. })),
            "the structure's own retune event must share the stream"
        );
    }

    #[test]
    fn commit_waits_for_tail_to_drain() {
        let stack: Stack2D<u32> =
            Stack2D::builder().params(p(8, 1, 1)).elastic_capacity(8).build().unwrap();
        let mut h = stack.handle_seeded(1);
        for i in 0..80 {
            h.push(i);
        }
        let mut elastic = Elastic::new(&stack, ScriptedController::new([Some(p(2, 1, 1))]));
        elastic.tick();
        for _ in 0..32 {
            assert!(elastic.tick().is_none(), "commit must wait for the tail");
        }
        while h.pop().is_some() {}
        let mut committed = false;
        for _ in 0..64 {
            if let Some(ev) = elastic.tick() {
                assert_eq!(ev.kind, RetuneKind::Commit);
                committed = true;
                break;
            }
        }
        assert!(committed, "drained tail must let the shrink commit");
        assert_eq!(stack.k_bound(), p(2, 1, 1).k_bound());
    }

    #[test]
    fn background_runner_applies_and_returns_events() {
        let stack = Arc::new(
            Stack2D::<u32>::builder().params(p(1, 1, 1)).elastic_capacity(8).build().unwrap(),
        );
        let runner = ElasticRunner::spawn(
            Arc::clone(&stack),
            ScriptedController::new([Some(p(8, 1, 1))]),
            Duration::from_millis(1),
        );
        // Give the runner a few cadences to fire.
        for _ in 0..100 {
            if stack.window().width() == 8 {
                break;
            }
            stack2d::sync::thread::sleep(Duration::from_millis(1));
        }
        let events = runner.stop();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, RetuneKind::Grow);
        assert_eq!(stack.window().width(), 8);
    }

    #[test]
    fn aimd_end_to_end_grows_under_real_contention_and_keeps_budget() {
        use crate::controller::AimdController;
        const BUDGET: usize = 93; // width ceiling 1 + 93/3 = 32
        let stack =
            Arc::new(Stack2D::builder().params(p(1, 1, 1)).elastic_capacity(32).build().unwrap());
        let runner = ElasticRunner::spawn(
            Arc::clone(&stack),
            AimdController::new(BUDGET),
            Duration::from_millis(1),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let stack = Arc::clone(&stack);
            let stop = Arc::clone(&stop);
            joins.push(stack2d::sync::thread::spawn(move || {
                let mut h = stack.handle_seeded(t + 1);
                // Bursty producer/consumer: runs of pushes slam the narrow
                // window (Global shifts nearly every op), generating the
                // pressure signal even on a single-core runner.
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        h.push(1u8);
                    }
                    for _ in 0..64 {
                        h.pop();
                    }
                }
            }));
        }
        stack2d::sync::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            j.join().unwrap();
        }
        let events = runner.stop();
        // 4 threads hammering a single sub-stack is the paper's bottleneck
        // scenario: the controller must have widened at least once.
        assert!(
            events.iter().any(|e| e.kind == RetuneKind::Grow),
            "no grow under 4-thread contention: {events:?}"
        );
        for e in &events {
            assert!(e.k_bound <= BUDGET, "budget violated: {e:?}");
        }
        assert!(stack.k_bound() <= BUDGET);
    }

    #[test]
    fn scripted_driver_retunes_a_queue() {
        let queue: Queue2D<u32> =
            Queue2D::builder().params(p(2, 1, 1)).elastic_capacity(16).build().unwrap();
        let script = ScriptedController::new([
            Some(p(8, 1, 1)), // grow
            Some(p(8, 2, 2)), // vertical
            Some(p(4, 2, 2)), // shrink (tail empty, commits on later ticks)
        ]);
        let mut elastic = Elastic::new(&queue, script);
        let ev = elastic.tick().expect("grow event");
        assert_eq!(ev.kind, RetuneKind::Grow);
        assert_eq!(ev.width, 8);
        assert_eq!(queue.put_window().width(), 8, "both queue windows must move");
        let ev = elastic.tick().expect("vertical event");
        assert_eq!(ev.kind, RetuneKind::Vertical);
        let ev = elastic.tick().expect("shrink event");
        assert_eq!(ev.kind, RetuneKind::Shrink);
        assert_eq!(ev.pop_width, 8, "dequeues keep covering the retired tail");
        let committed = (0..64)
            .find_map(|_| elastic.tick())
            .expect("empty tail must let the queue shrink commit");
        assert_eq!(committed.kind, RetuneKind::Commit);
        assert_eq!(committed.pop_width, 4);
        // The queue stays fully usable after the schedule.
        let mut h = queue.handle_seeded(1);
        for i in 0..100 {
            h.enqueue(i);
        }
        let mut n = 0;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn background_runner_drives_a_counter_under_budget() {
        const BUDGET: usize = 21; // width ceiling 1 + 21/3 = 8
        let counter =
            Arc::new(Counter2D::builder().params(p(1, 1, 1)).elastic_capacity(8).build().unwrap());
        let runner = ElasticRunner::spawn_with_budget(
            Arc::clone(&counter),
            AimdController::new(BUDGET),
            Duration::from_micros(500),
            BUDGET,
        );
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let counter = Arc::clone(&counter);
            joins.push(stack2d::sync::thread::spawn(move || {
                let mut h = counter.handle_seeded(t + 1);
                for _ in 0..20_000 {
                    h.increment();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let events = runner.stop();
        for e in &events {
            assert!(e.k_bound <= BUDGET, "budget violated: {e:?}");
        }
        for _ in 0..64 {
            counter.try_commit_shrink();
        }
        assert_eq!(counter.value(), 4 * 20_000, "retunes must not lose increments");
        assert!(counter.window().k_bound() <= BUDGET);
    }
}
