//! Managed adaptive mode: an RAII guard owning the background retuning
//! runner, and the builder extension that constructs it in one chain.
//!
//! Before this module, wiring up the elastic runtime was a manual dance —
//! wrap the structure in an `Arc`, call [`ElasticRunner::spawn_with_budget`]
//! with a hand-threaded budget, remember to call `stop()` before the end of
//! the scope. [`Managed`] owns all of that: build it straight off a
//! structure [`Builder`] with [`AdaptiveBuilder::adaptive`], use the
//! structure through `Deref`, and the runner is stopped and its event log
//! drained when the guard drops.
//!
//! ```
//! use std::time::Duration;
//! use stack2d::Stack2D;
//! use stack2d_adaptive::{AdaptiveBuilder, AimdController};
//!
//! let stack = Stack2D::<u64>::builder()
//!     .width(1)
//!     .elastic_capacity(32)
//!     .adaptive(AimdController::new(1_000), Duration::from_millis(1))
//!     .unwrap();
//! // Deref: the guard is used exactly like the structure it manages.
//! let mut h = stack.handle();
//! for i in 0..10_000u64 {
//!     h.push(i);
//!     h.pop();
//! }
//! drop(h); // handles borrow the structure; release before stopping
//! let events = stack.stop(); // or just drop the guard
//! assert!(events.iter().all(|e| e.k_bound <= 1_000));
//! ```

use stack2d::sync::Arc;
use std::fmt;
use std::ops::Deref;
use std::time::Duration;

use stack2d::{Buildable, Builder, ElasticTarget, ParamsError};

use crate::controller::Controller;
use crate::runtime::{ElasticRunner, RetuneEvent};

/// An elastic structure together with the background controller thread
/// retuning it — a scope guard for adaptive mode.
///
/// Obtained from [`AdaptiveBuilder::adaptive`] (the builder path) or
/// [`Managed::spawn`] (around an existing shared structure). The managed
/// structure is reachable through `Deref`, so handles, metrics and window
/// snapshots read exactly as on the bare type; [`Managed::share`] clones
/// the inner `Arc` for worker threads that outlive the borrow.
///
/// Stopping: [`Managed::stop`] joins the runner and returns its
/// [`RetuneEvent`] log; merely dropping the guard also stops and joins the
/// runner, draining the log. Either way, no controller thread survives the
/// guard — the RAII contract that replaces the manual `Arc` + `spawn` +
/// `stop` wiring.
pub struct Managed<S: ElasticTarget + 'static> {
    target: Arc<S>,
    runner: Option<ElasticRunner>,
}

impl<S: ElasticTarget + 'static> Managed<S> {
    /// Starts managed mode around an existing shared structure: a
    /// background thread ticks `controller` every `cadence`, with the
    /// driver budget mirrored from [`Controller::budget`].
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use std::time::Duration;
    /// use stack2d::Queue2D;
    /// use stack2d_adaptive::{AimdController, Managed};
    ///
    /// let queue = Arc::new(Queue2D::<u32>::builder().elastic_capacity(8).build().unwrap());
    /// let managed = Managed::spawn(
    ///     Arc::clone(&queue),
    ///     AimdController::new(100),
    ///     Duration::from_millis(1),
    /// );
    /// queue.enqueue(1);
    /// assert_eq!(managed.dequeue(), Some(1));
    /// ```
    pub fn spawn<C>(target: Arc<S>, controller: C, cadence: Duration) -> Self
    where
        C: Controller + Send + 'static,
    {
        let budget = controller.budget().unwrap_or(usize::MAX);
        let runner =
            ElasticRunner::spawn_with_budget(Arc::clone(&target), controller, cadence, budget);
        Managed { target, runner: Some(runner) }
    }

    /// A shared handle to the managed structure, for worker threads that
    /// must outlive a borrow of the guard.
    pub fn share(&self) -> Arc<S> {
        Arc::clone(&self.target)
    }

    /// Stops the controller thread and returns its retune-event log (the
    /// width/depth-over-time series the harness plots).
    pub fn stop(mut self) -> Vec<RetuneEvent> {
        self.runner.take().map(ElasticRunner::stop).unwrap_or_default()
    }
}

impl<S: ElasticTarget + 'static> Deref for Managed<S> {
    type Target = S;

    fn deref(&self) -> &S {
        &self.target
    }
}

impl<S: ElasticTarget + 'static> Drop for Managed<S> {
    /// Stops and joins the runner, draining its event log — dropping the
    /// guard is always a clean shutdown.
    fn drop(&mut self) {
        // ElasticRunner's own Drop raises the stop flag and joins.
        let _ = self.runner.take();
    }
}

impl<S: ElasticTarget + 'static> fmt::Debug for Managed<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Managed")
            .field("target", &self.target.target_name())
            .field("window", &self.target.window())
            .finish()
    }
}

/// Builder-integrated adaptive mode: `.adaptive(controller, cadence)` as
/// the terminal call of a structure [`Builder`] chain, in place of
/// `.build()`.
///
/// Implemented for the builders of every elastic structure (the blanket
/// impl covers any [`Buildable`] that is also an [`ElasticTarget`]).
/// Combine with [`Builder::elastic_capacity`] — the capacity is the
/// ceiling the controller can grow width to; without it only the vertical
/// dimension (depth/shift) can move.
pub trait AdaptiveBuilder<S: ElasticTarget + 'static>: Sized {
    /// Validates the configuration, constructs the structure and starts
    /// managed adaptive mode in one step.
    ///
    /// # Errors
    ///
    /// The [`ParamsError`] that [`Builder::build`] would give.
    fn adaptive<C>(self, controller: C, cadence: Duration) -> Result<Managed<S>, ParamsError>
    where
        C: Controller + Send + 'static;
}

impl<S> AdaptiveBuilder<S> for Builder<S>
where
    S: Buildable + ElasticTarget + 'static,
{
    fn adaptive<C>(self, controller: C, cadence: Duration) -> Result<Managed<S>, ParamsError>
    where
        C: Controller + Send + 'static,
    {
        Ok(Managed::spawn(Arc::new(self.build()?), controller, cadence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{RetuneKind, ScriptedController};
    use stack2d::{Counter2D, Params, Queue2D, Stack2D};

    fn p(w: usize, d: usize, s: usize) -> Params {
        Params::new(w, d, s).unwrap()
    }

    #[test]
    fn builder_adaptive_builds_and_retunes() {
        let stack = Stack2D::<u32>::builder()
            .width(1)
            .elastic_capacity(8)
            .adaptive(ScriptedController::new([Some(p(8, 1, 1))]), Duration::from_millis(1))
            .unwrap();
        for _ in 0..200 {
            if stack.window().width() == 8 {
                break;
            }
            stack2d::sync::thread::sleep(Duration::from_millis(1));
        }
        let events = stack.stop();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, RetuneKind::Grow);
    }

    #[test]
    fn builder_adaptive_reports_invalid_params() {
        let err = Stack2D::<u32>::builder()
            .width(0)
            .adaptive(ScriptedController::new([]), Duration::from_millis(1))
            .unwrap_err();
        assert_eq!(err, stack2d::ParamsError::ZeroWidth);
    }

    #[test]
    fn drop_stops_the_runner() {
        // No explicit stop(): dropping the guard must join the controller
        // thread; the scripted retune either landed or not, but nothing
        // may outlive the guard (no panic, no leak under the test runner).
        let queue = Queue2D::<u32>::builder()
            .width(1)
            .elastic_capacity(4)
            .adaptive(ScriptedController::new([Some(p(4, 1, 1))]), Duration::from_micros(200))
            .unwrap();
        let shared = queue.share();
        shared.enqueue(7);
        assert_eq!(queue.dequeue(), Some(7));
        drop(queue);
        // The shared Arc keeps the structure alive after the guard.
        shared.enqueue(9);
        assert_eq!(shared.dequeue(), Some(9));
    }

    #[test]
    fn managed_budget_mirrors_the_controller() {
        use crate::controller::AimdController;
        const BUDGET: usize = 21;
        let counter = Counter2D::builder()
            .width(1)
            .elastic_capacity(8)
            .adaptive(AimdController::new(BUDGET), Duration::from_micros(300))
            .unwrap();
        let mut h = counter.handle_seeded(1);
        for _ in 0..50_000 {
            h.increment();
        }
        drop(h);
        let value_before_stop = counter.value();
        let events = counter.stop();
        for e in &events {
            assert!(e.k_bound <= BUDGET, "budget violated: {e:?}");
        }
        assert_eq!(value_before_stop, 50_000);
    }
}
