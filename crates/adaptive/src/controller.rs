//! Feedback controllers: from metrics deltas to new window parameters.
//!
//! A controller is a pure decision function — it never touches the stack —
//! so policies are unit-testable from fabricated [`Observation`]s and the
//! driver ([`crate::runtime`]) owns all the sampling and retuning
//! machinery.

use std::time::Duration;

use stack2d::{MetricsSnapshot, Params, WindowInfo};

/// What a controller sees at each tick: the counter increments since the
/// previous tick plus the live window.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Wall-clock time covered by this sample.
    pub interval: Duration,
    /// Counter increments over the interval
    /// ([`MetricsSnapshot::delta_since`]).
    pub delta: MetricsSnapshot,
    /// The window in force at sampling time.
    pub window: WindowInfo,
    /// The target's sub-structure capacity (hard width ceiling).
    pub capacity: usize,
    /// The user's relaxation budget: emitted parameters must keep
    /// `k_bound <= max_k`.
    pub max_k: usize,
}

impl Observation {
    /// Completed operations per second over the interval.
    pub fn throughput(&self) -> f64 {
        let secs = self.interval.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delta.ops as f64 / secs
        }
    }

    /// The *window pressure*: coordination events (lost descriptor CASes,
    /// `Global` shifts in either direction, mid-search restarts) per
    /// completed operation.
    ///
    /// This is the paper-native congestion signal: a window too small for
    /// the traffic shifts `Global` roughly once per `width * shift`
    /// pushes and loses CASes to neighbours, while a comfortably wide
    /// window absorbs the same traffic with none of either. Unlike a pure
    /// CAS-failure rate it also responds on machines where threads rarely
    /// overlap mid-instruction (e.g. single-core CI runners).
    ///
    /// Normalisation: events are divided by *search rounds*, not raw ops.
    /// A batched call (`push_n`/`pop_n`) completes up to `depth` ops off a
    /// single engine search, so one coordination event per batch would
    /// read as `1/n` pressure under an ops denominator — batch-heavy
    /// traffic would look artificially calm and starve the window of
    /// growth. Snapshots recorded before the batching counters existed
    /// (`search_rounds == 0` with `ops > 0`) fall back to the old
    /// per-op normalisation.
    pub fn window_pressure(&self) -> f64 {
        let rounds =
            if self.delta.search_rounds > 0 { self.delta.search_rounds } else { self.delta.ops };
        if rounds == 0 {
            return 0.0;
        }
        let events = self.delta.cas_failures
            + self.delta.global_restarts
            + self.delta.shifts_up
            + self.delta.shifts_down;
        events as f64 / rounds as f64
    }
}

/// A window-retuning policy: maps an [`Observation`] to the parameters to
/// install next, or `None` to leave the window alone.
pub trait Controller {
    /// Decides the next window parameters.
    ///
    /// Implementations must uphold the **k-budget invariant**: any returned
    /// parameter set satisfies `params.k_bound() <= obs.max_k` and
    /// `params.width() <= obs.capacity`.
    fn decide(&mut self, obs: &Observation) -> Option<Params>;

    /// The relaxation budget this policy enforces, if it carries one.
    ///
    /// The managed runtime ([`Managed`](crate::Managed)) mirrors it as the
    /// driver-level budget, so a builder-constructed guard needs no
    /// separate `max_k` plumbing. The default (`None`) means "no policy
    /// budget" — the driver then runs uncapped, exactly like
    /// [`ElasticRunner::spawn`](crate::ElasticRunner::spawn).
    fn budget(&self) -> Option<usize> {
        None
    }
}

/// The widest `width` whose relaxation bound stays within `max_k` for the
/// given vertical dimensions: inverts
/// `k = max(2*shift + depth, 2*depth - 1) * (width - 1)`.
///
/// # Examples
///
/// ```
/// use stack2d_adaptive::max_width_for_budget;
///
/// assert_eq!(max_width_for_budget(1, 1, 0), 1); // strict: one sub-stack
/// assert_eq!(max_width_for_budget(1, 1, 30), 11); // 3 * (11 - 1) = 30
/// assert_eq!(max_width_for_budget(2, 1, 30), 8); // 4 * (8 - 1) = 28
/// ```
pub fn max_width_for_budget(depth: usize, shift: usize, max_k: usize) -> usize {
    let per_sibling = (2 * shift + depth).max(2 * depth - 1);
    1 + max_k / per_sibling
}

/// The deepest `depth` (in the vertical `shift = depth` shape of
/// [`Params::for_k`](stack2d::Params::for_k)) whose relaxation bound stays
/// within `max_k` at the given width: inverts `k = 3 * depth * (width - 1)`.
///
/// A single sub-structure (`width <= 1`) is strict at any depth (`k = 0`),
/// so the budget never binds there and `usize::MAX` is returned.
///
/// # Examples
///
/// ```
/// use stack2d_adaptive::max_depth_for_budget;
///
/// assert_eq!(max_depth_for_budget(8, 84), 4); // 3 * 4 * 7 = 84
/// assert_eq!(max_depth_for_budget(8, 20), 1); // even depth 1 costs 21 > 20
/// assert_eq!(max_depth_for_budget(1, 0), usize::MAX);
/// ```
pub fn max_depth_for_budget(width: usize, max_k: usize) -> usize {
    if width <= 1 {
        return usize::MAX;
    }
    (max_k / (3 * (width - 1))).max(1)
}

/// The default policy: **multiplicative increase** of `width` while the
/// [window pressure](Observation::window_pressure) is above `grow_above`,
/// **additive decrease** once it falls below `shrink_below` — and, since
/// PR 3, a walk of the **vertical** dimension once width saturates.
///
/// Classic AIMD is inverted deliberately: the scarce resource here is the
/// relaxation budget `max_k`, so the controller spends it fast when
/// contention demands (doubling reacts to a burst within a couple of
/// ticks) and returns it gradually when the burst passes (stepwise
/// tightening avoids oscillating straight back into contention). Width
/// never exceeds `min(capacity, max_width_for_budget(..))`, so the
/// k-budget invariant holds by construction.
///
/// The walk follows the paper's two-dimensional tuning strategy (§4, the
/// same order as [`Params::for_k`](stack2d::Params::for_k)): width is the
/// cheap dimension for quality, so it is spent first. Once width has
/// saturated against the capacity *with budget headroom left*, sustained
/// pressure doubles `depth` instead (in the `shift = depth` shape), up to
/// [`max_depth_for_budget`] — a deeper window shifts `Global` less often,
/// trading locality for the remaining budget. In calm periods the walk
/// retraces itself: depth halves back toward 1 first (the vertical budget
/// was borrowed last), and only then width steps down.
///
/// # Examples
///
/// ```
/// use stack2d_adaptive::AimdController;
///
/// let c = AimdController::new(450); // k budget of Figure 1's mid range
/// assert_eq!(c.max_k(), 450);
/// ```
#[derive(Debug, Clone)]
pub struct AimdController {
    max_k: usize,
    /// Window pressure above which the window widens (default 0.05, i.e.
    /// a coordination event every ~20 operations).
    pub grow_above: f64,
    /// Window pressure below which the window tightens (default 0.01).
    pub shrink_below: f64,
    /// Minimum operations in a sample before acting (default 64 — avoids
    /// deciding on noise right after a phase change).
    pub min_ops: u64,
    /// Ticks to hold after a width change before deciding again (default
    /// 4). A width grow hands pushes a large one-off capacity cushion —
    /// the fresh sub-stacks sit far below `Global` — which suppresses the
    /// pressure signal until they catch up; deciding during that transient
    /// oscillates grow/shrink. The dwell lets the signal re-stabilize.
    pub dwell: u32,
    /// Remaining dwell ticks.
    cooldown: u32,
}

impl AimdController {
    /// A controller targeting throughput subject to `k_bound <= max_k`.
    pub fn new(max_k: usize) -> Self {
        AimdController {
            max_k,
            grow_above: 0.05,
            shrink_below: 0.01,
            min_ops: 64,
            dwell: 4,
            cooldown: 0,
        }
    }

    /// The relaxation budget this controller enforces.
    pub fn max_k(&self) -> usize {
        self.max_k
    }
}

impl Controller for AimdController {
    fn decide(&mut self, obs: &Observation) -> Option<Params> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        if obs.delta.ops < self.min_ops {
            return None;
        }
        let params = obs.window.params();
        let (width, depth, shift) = (params.width(), params.depth(), params.shift());
        let budget = self.max_k.min(obs.max_k);
        let ceiling = max_width_for_budget(depth, shift, budget).min(obs.capacity);
        let rate = obs.window_pressure();
        let next = if rate > self.grow_above {
            if width < ceiling {
                // Horizontal first: width is the cheap dimension for
                // quality (§4).
                let target = (width * 2).min(ceiling);
                Some(Params::new(target, depth, shift).expect("width grow keeps depth/shift"))
            } else if width >= obs.capacity {
                // Width saturated at capacity with budget headroom left:
                // walk the vertical dimension in the shift = depth shape.
                // MAX_DEPTH backstops the doubling where the budget never
                // binds (width 1 is strict at any depth; pressure falls as
                // 1/depth, so the signal stops the walk long before this).
                const MAX_DEPTH: usize = 1 << 16;
                let d = (depth * 2).min(max_depth_for_budget(width, budget)).min(MAX_DEPTH);
                (d > depth)
                    .then(|| Params::new(width, d, d).expect("shift = depth is always valid"))
            } else {
                // Width saturated against the budget itself: growing depth
                // would only force width back down. Nothing left to spend.
                None
            }
        } else if rate < self.shrink_below {
            if depth > 1 {
                // Retrace the walk: the vertical budget was borrowed last,
                // return it first. Clamp against the budget too — on a
                // hand-built shape with shift << depth, the halved
                // shift = depth shape could otherwise cost *more* than the
                // current window (k grows with shift at fixed depth).
                let d = (depth / 2).min(max_depth_for_budget(width, budget));
                Some(Params::new(width, d, d).expect("halved depth stays >= 1"))
            } else if width > 1 {
                let target = width - (width / 4).max(1);
                Some(Params::new(target, depth, shift).expect("width shrink floors at 1"))
            } else {
                None
            }
        } else {
            None
        };
        if next.is_some() {
            self.cooldown = self.dwell;
        }
        next
    }

    fn budget(&self) -> Option<usize> {
        Some(self.max_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(width: usize, ops: u64, cas_failures: u64, max_k: usize) -> Observation {
        obs_at(Params::new(width, 1, 1).unwrap(), 64, ops, cas_failures, max_k)
    }

    fn obs_at(
        params: Params,
        capacity: usize,
        ops: u64,
        cas_failures: u64,
        max_k: usize,
    ) -> Observation {
        let stack: stack2d::Stack2D<u8> =
            stack2d::Stack2D::builder().params(params).elastic_capacity(capacity).build().unwrap();
        Observation {
            interval: Duration::from_millis(10),
            delta: MetricsSnapshot { ops, cas_failures, ..Default::default() },
            window: stack.window(),
            capacity,
            max_k,
        }
    }

    #[test]
    fn budget_inversion_matches_k_bound() {
        for depth in 1..6 {
            for shift in 1..=depth {
                for k in [0usize, 1, 9, 30, 450, 10_000] {
                    let w = max_width_for_budget(depth, shift, k);
                    assert!(w >= 1);
                    let p = Params::new(w, depth, shift).unwrap();
                    assert!(p.k_bound() <= k || w == 1, "w={w} d={depth} s={shift} k={k}");
                    // One wider would bust the budget.
                    let wider = Params::new(w + 1, depth, shift).unwrap();
                    assert!(wider.k_bound() > k, "inversion not tight at w={w} k={k}");
                }
            }
        }
    }

    #[test]
    fn grows_multiplicatively_under_contention() {
        let mut c = AimdController::new(10_000);
        let p = c.decide(&obs(4, 1_000, 100, 10_000)).expect("high contention must grow");
        assert_eq!(p.width(), 8);
    }

    #[test]
    fn shrinks_additively_when_calm() {
        let mut c = AimdController::new(10_000);
        c.dwell = 0;
        let p = c.decide(&obs(16, 1_000, 0, 10_000)).expect("calm must shrink");
        assert_eq!(p.width(), 12);
        // Shrinking bottoms out at one sub-stack (a strict stack).
        let p = c.decide(&obs(2, 1_000, 0, 10_000)).expect("still calm");
        assert_eq!(p.width(), 1);
        assert!(c.decide(&obs(1, 1_000, 0, 10_000)).is_none());
    }

    #[test]
    fn dwell_holds_after_a_width_change() {
        let mut c = AimdController::new(10_000);
        assert!(c.decide(&obs(4, 1_000, 500, 10_000)).is_some(), "first decision acts");
        for _ in 0..c.dwell {
            assert!(
                c.decide(&obs(4, 1_000, 500, 10_000)).is_none(),
                "cooldown must swallow decisions"
            );
        }
        assert!(c.decide(&obs(4, 1_000, 500, 10_000)).is_some(), "cooldown expires");
    }

    #[test]
    fn holds_in_the_dead_band() {
        let mut c = AimdController::new(10_000);
        // rate = 0.01: between shrink_below and grow_above.
        assert!(c.decide(&obs(8, 1_000, 10, 10_000)).is_none());
    }

    #[test]
    fn respects_the_k_budget() {
        let mut c = AimdController::new(9); // width ceiling: 1 + 9/3 = 4
        c.dwell = 0;
        let p = c.decide(&obs(2, 1_000, 500, 9)).unwrap();
        assert!(p.k_bound() <= 9, "{p}");
        assert_eq!(p.width(), 4);
        // At the ceiling, contention no longer grows the window.
        assert!(c.decide(&obs(4, 1_000, 500, 9)).is_none());
    }

    #[test]
    fn ignores_undersized_samples() {
        let mut c = AimdController::new(10_000);
        assert!(c.decide(&obs(4, 3, 3, 10_000)).is_none(), "3 ops is noise");
    }

    #[test]
    fn observation_throughput_divides_by_interval() {
        let o = obs(4, 500, 0, 100);
        assert!((o.throughput() - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn depth_budget_inversion_is_tight() {
        for width in 2..10 {
            for k in [0usize, 3, 21, 84, 450] {
                let d = max_depth_for_budget(width, k);
                let p = Params::new(width, d, d).unwrap();
                assert!(p.k_bound() <= k || d == 1, "w={width} d={d} k={k}");
                let deeper = Params::new(width, d + 1, d + 1).unwrap();
                assert!(deeper.k_bound() > k, "inversion not tight at w={width} d={d} k={k}");
            }
        }
    }

    #[test]
    fn walks_vertical_once_width_saturates_at_capacity() {
        // Capacity 8, generous budget: width fills to 8 first, then
        // sustained pressure walks depth with shift = depth.
        const BUDGET: usize = 84; // max depth at width 8: 84 / 21 = 4
        let mut c = AimdController::new(BUDGET);
        c.dwell = 0;
        let p = c.decide(&obs_at(Params::new(4, 1, 1).unwrap(), 8, 1_000, 500, BUDGET)).unwrap();
        assert_eq!((p.width(), p.depth()), (8, 1), "width grows to capacity first");
        let p = c.decide(&obs_at(p, 8, 1_000, 500, BUDGET)).unwrap();
        assert_eq!((p.width(), p.depth(), p.shift()), (8, 2, 2), "then depth doubles");
        let p = c.decide(&obs_at(p, 8, 1_000, 500, BUDGET)).unwrap();
        assert_eq!((p.width(), p.depth(), p.shift()), (8, 4, 4));
        assert!(p.k_bound() <= BUDGET);
        // Depth 4 is the budget ceiling: pressure can no longer move it.
        assert!(c.decide(&obs_at(p, 8, 1_000, 500, BUDGET)).is_none());
    }

    #[test]
    fn budget_saturated_width_does_not_walk_vertical() {
        // Budget 9 caps width at 4 < capacity 64: growing depth would
        // shrink the affordable width, so the controller holds instead.
        let mut c = AimdController::new(9);
        c.dwell = 0;
        assert!(c.decide(&obs(4, 1_000, 500, 9)).is_none());
    }

    #[test]
    fn calm_retraces_depth_before_width() {
        let mut c = AimdController::new(10_000);
        c.dwell = 0;
        let deep = Params::new(8, 4, 4).unwrap();
        let p = c.decide(&obs_at(deep, 8, 1_000, 0, 10_000)).unwrap();
        assert_eq!((p.width(), p.depth(), p.shift()), (8, 2, 2), "depth returns first");
        let p = c.decide(&obs_at(p, 8, 1_000, 0, 10_000)).unwrap();
        assert_eq!((p.width(), p.depth(), p.shift()), (8, 1, 1));
        let p = c.decide(&obs_at(p, 8, 1_000, 0, 10_000)).unwrap();
        assert_eq!(p.width(), 6, "only then width steps down");
    }

    #[test]
    fn calm_retrace_clamps_against_the_budget() {
        // Hand-built shape with shift << depth: (8, 8, 1) has k = 105,
        // over a budget of 70. A naive halve to (8, 4, 4) would emit
        // k = 84 — still over budget — where the clamped retrace lands
        // within budget in one step: (8, 3, 3), k = 63.
        let mut c = AimdController::new(70);
        c.dwell = 0;
        let start = Params::new(8, 8, 1).unwrap();
        assert!(start.k_bound() > 70);
        let p = c.decide(&obs_at(start, 8, 1_000, 0, 70)).unwrap();
        assert!(p.k_bound() <= 70, "retrace must land within budget: {p}");
        assert!(p.depth() < 8, "retrace must still shrink depth: {p}");
    }

    #[test]
    fn vertical_walk_has_a_hard_depth_ceiling() {
        // Width 1 with an unbounded budget: the signal normally stops the
        // walk (pressure ~ 1/depth), but a pathological configuration
        // (grow_above = 0) must hit the backstop instead of overflowing.
        let mut c = AimdController::new(usize::MAX);
        c.dwell = 0;
        c.grow_above = 0.0;
        let mut params = Params::new(1, 1, 1).unwrap();
        for _ in 0..64 {
            match c.decide(&obs_at(params, 1, 1_000, 500, usize::MAX)) {
                Some(p) => params = p,
                None => break,
            }
        }
        assert_eq!(params.depth(), 1 << 16, "walk must stop at the ceiling");
        assert!(c.decide(&obs_at(params, 1, 1_000, 500, usize::MAX)).is_none());
    }

    #[test]
    fn vertical_walk_self_limits_at_width_one() {
        // Width 1 is strict (k = 0) at any depth; a deeper window still
        // reduces shift pressure, and the budget never binds.
        let mut c = AimdController::new(0);
        c.dwell = 0;
        let p = c.decide(&obs_at(Params::new(1, 1, 1).unwrap(), 1, 1_000, 500, 0)).unwrap();
        assert_eq!((p.width(), p.depth(), p.shift()), (1, 2, 2));
        assert_eq!(p.k_bound(), 0);
    }

    #[test]
    fn pressure_normalises_by_search_rounds_not_ops() {
        // 6_400 ops completed in 100 engine rounds (batch of 64): 50
        // coordination events is one every other *round* — heavy pressure
        // — even though it is under 1% of *ops*. The ops denominator
        // would read 0.0078 and shrink; the rounds denominator reads 0.5.
        let mut o = obs(4, 6_400, 50, 10_000);
        o.delta.search_rounds = 100;
        assert!((o.window_pressure() - 0.5).abs() < 1e-9);
        // The AIMD controller must see through batching and grow.
        let mut c = AimdController::new(10_000);
        let p = c.decide(&o).expect("batched contention must grow");
        assert_eq!(p.width(), 8);
    }

    #[test]
    fn pressure_falls_back_to_ops_for_legacy_snapshots() {
        // A delta recorded before the batching counters existed carries
        // search_rounds == 0; pressure must keep its historical meaning.
        let o = obs(4, 1_000, 100, 10_000);
        assert_eq!(o.delta.search_rounds, 0);
        assert!((o.window_pressure() - 0.1).abs() < 1e-9);
        let empty = obs(4, 0, 0, 10_000);
        assert_eq!(empty.window_pressure(), 0.0);
    }
}
